"""Multi-process serving tests: worker pool, coalescing, RCU, degradation.

The hard contracts exercised here:

- every route of the threaded server exists on the async front end
  with the same status codes and error strings;
- predict responses are **bit-identical** to the single-process
  threaded server (only the ``cached`` marker -- serving metadata
  about batch-local dedup -- may differ);
- RCU: with concurrent ``/ingest`` publishes, every response is
  bit-identical to a single-process solve against the generation named
  by its ``X-World-Generation`` header;
- a ``kill -9`` of any worker degrades (re-dispatch, then inline
  fallback) but never corrupts or drops a request;
- graceful shutdown lets a slow in-flight request finish.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.columnar import compile_world
from repro.data.delta import WorldDelta, apply_delta
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.foldin import FoldInPredictor, prediction_payload
from repro.serving.frontend import (
    COALESCE_BATCH_SIZE,
    COALESCE_DISPATCHES,
    FrontendThread,
    make_frontend,
)
from repro.serving.server import make_server
from repro.serving.store import WorldStore


@pytest.fixture(scope="module")
def dataset():
    return generate_world(SyntheticWorldConfig(n_users=80, seed=6))


@pytest.fixture(scope="module")
def result(dataset):
    params = MLPParams(n_iterations=10, burn_in=4, seed=0, engine="vectorized")
    return MLPModel(params).fit(dataset)


def _spawn(result, store_dir, n_workers=2, coalesce_ms=2.0):
    predictor = FoldInPredictor(result, artifact_id="frontend-test")
    store = WorldStore(store_dir, predictor.world.gazetteer)
    frontend = make_frontend(
        predictor, store, n_workers, port=0, coalesce_ms=coalesce_ms
    )
    ft = FrontendThread(frontend).start()
    return ft, frontend, predictor, store


@pytest.fixture(scope="module")
def served(result, tmp_path_factory):
    """A module-wide read-only front end: 2 workers, 2 ms window."""
    ft, frontend, predictor, store = _spawn(
        result, tmp_path_factory.mktemp("store")
    )
    yield ft, frontend, predictor
    ft.stop()
    store.close()


@pytest.fixture(scope="module")
def base_url(served):
    ft, _, _ = served
    return f"http://127.0.0.1:{ft.port}"


@pytest.fixture(scope="module")
def threaded_url(result):
    """The single-process reference server over the same artifact."""
    predictor = FoldInPredictor(result, artifact_id="frontend-test")
    server = make_server(predictor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _strip_cached(body):
    """Drop the ``cached`` serving-metadata key, wherever it nests."""
    if isinstance(body, dict):
        return {
            k: _strip_cached(v) for k, v in body.items() if k != "cached"
        }
    if isinstance(body, list):
        return [_strip_cached(v) for v in body]
    return body


class TestRoutes:
    def test_healthz_reports_topology(self, base_url):
        status, payload = _get(f"{base_url}/healthz")
        assert status == 200
        assert set(payload) == {
            "status", "artifact", "world", "cache", "journal", "metrics",
            "serving",
        }
        serving = payload["serving"]
        assert serving["mode"] == "multiprocess"
        assert serving["workers"] == 2
        assert serving["coalesce_ms"] == 2.0
        assert serving["store"]["generation"] == 0
        info = serving["worker_info"]
        assert len(info) == 2
        for row in info:
            assert row["alive"] is True
            assert isinstance(row["pid"], int)
            assert row["pid"] != os.getpid()

    def test_healthz_worker_generation_after_dispatch(self, base_url):
        _post(f"{base_url}/predict-home", {"users": [{"user_id": 1}]})
        _, payload = _get(f"{base_url}/healthz")
        generations = [
            row["generation"]
            for row in payload["serving"]["worker_info"]
        ]
        assert 0 in generations  # at least one worker has served gen 0

    def test_metrics_exposes_coalescing_histogram(self, base_url):
        with urllib.request.urlopen(
            f"{base_url}/metrics", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert "repro_serve_coalesced_batch_size_bucket" in text
        assert "repro_serve_dispatches_total" in text
        assert "repro_worker_batches_total" in text

    def test_unknown_route_404(self, base_url):
        status, payload, _ = _post(f"{base_url}/nope", {})
        assert status == 404
        assert payload == {"error": "unknown route /nope"}

    def test_get_on_post_route_405_with_allow(self, base_url):
        try:
            urllib.request.urlopen(f"{base_url}/predict-home", timeout=30)
            raise AssertionError("expected HTTPError")
        except urllib.error.HTTPError as error:
            assert error.code == 405
            assert error.headers["Allow"] == "POST"

    def test_post_on_get_route_405_with_allow(self, base_url):
        status, _, headers = _post(f"{base_url}/healthz", {})
        assert status == 405
        assert headers["Allow"] == "GET"

    def test_invalid_json_400(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/predict-home", data=b"{nope", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            raise AssertionError("expected HTTPError")
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "invalid JSON body" in json.loads(error.read())["error"]

    def test_per_request_client_errors_400(self, base_url):
        status, payload, _ = _post(
            f"{base_url}/predict-home", {"users": []}
        )
        assert status == 400
        assert payload == {
            "error": '"users" must be a non-empty list of specs'
        }
        status, payload, _ = _post(
            f"{base_url}/predict-home", {"users": [{"user_id": 10**6}]}
        )
        assert status == 400
        assert "not in the served world" in payload["error"]

    def test_predict_carries_generation_header(self, base_url):
        status, _, headers = _post(
            f"{base_url}/predict-home", {"users": [{"user_id": 2}]}
        )
        assert status == 200
        assert headers["X-World-Generation"] == "0"


class TestBitIdentity:
    """Frontend bodies == threaded bodies, modulo the ``cached`` marker."""

    BODIES = [
        ("/predict-home", {"users": [{"user_id": 7}]}),
        ("/predict-home", {"users": [{"user_id": 3}, {"user_id": 12}],
                           "top_k": 5}),
        ("/predict-home", {"users": [
            {"friends": [3, 17], "venues": [2]},
            {"followers": [9], "observed_location": 1},
        ]}),
        ("/predict-batch", [{"user_id": 4}, {"friends": [1, 2]},
                            {"user_id": 4}]),
        ("/profile", {"user_id": 5, "top_k": 4}),
        ("/explain-edge", {"user": {"user_id": 6}, "neighbor": 9,
                           "direction": "out"}),
    ]

    def test_bodies_match_threaded_server(self, base_url, threaded_url):
        for route, body in self.BODIES:
            status_f, payload_f, _ = _post(f"{base_url}{route}", body)
            status_t, payload_t, _ = _post(f"{threaded_url}{route}", body)
            assert status_f == status_t == 200, (route, payload_f)
            assert _strip_cached(payload_f) == _strip_cached(payload_t), route

    def test_artifact_matches_threaded_server(self, base_url, threaded_url):
        _, payload_f = _get(f"{base_url}/artifact")
        _, payload_t = _get(f"{threaded_url}/artifact")
        assert payload_f == payload_t

    def test_error_strings_match_threaded_server(
        self, base_url, threaded_url
    ):
        body = {"users": [{"user_id": 99999}]}
        _, error_f, _ = _post(f"{base_url}/predict-home", body)
        _, error_t, _ = _post(f"{threaded_url}/predict-home", body)
        assert error_f == error_t


class TestCoalescing:
    def test_concurrent_burst_coalesces(self, result, tmp_path):
        ft, frontend, _, store = _spawn(
            result, tmp_path, n_workers=2, coalesce_ms=80.0
        )
        try:
            base = f"http://127.0.0.1:{ft.port}"
            before_ok = COALESCE_DISPATCHES.labels(outcome="ok").value
            before_count = COALESCE_BATCH_SIZE.summary()["count"]
            n = 8
            barrier = threading.Barrier(n)
            statuses = []
            lock = threading.Lock()

            def fire(i):
                barrier.wait()
                status, _, _ = _post(
                    f"{base}/predict-home",
                    {"users": [{"friends": [i, i + 1]}]},
                )
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert statuses == [200] * n
            dispatches = (
                COALESCE_DISPATCHES.labels(outcome="ok").value - before_ok
            )
            assert 1 <= dispatches < n  # the window merged traffic
            assert COALESCE_BATCH_SIZE.summary()["count"] > before_count
            assert COALESCE_BATCH_SIZE.summary()["max"] >= 2
        finally:
            ft.stop()
            store.close()


class TestIngestAndRCU:
    def _ingest_body(self, i: int, label_user=None):
        body = {
            "new_users": [{}],
            "edges": [[i % 40, (i * 7 + 3) % 40]],
            "tweets": [],
            "labels": {},
        }
        if label_user is not None:
            body["labels"] = {str(label_user): 1}
        return body

    def test_ingest_publishes_and_workers_adopt(self, result, tmp_path):
        ft, frontend, predictor, store = _spawn(result, tmp_path)
        try:
            base = f"http://127.0.0.1:{ft.port}"
            status, body, headers = _post(
                f"{base}/ingest", self._ingest_body(0)
            )
            assert status == 200
            assert body["generation"] == 1
            assert headers["X-World-Generation"] == "1"
            assert store.current_generation() == 1
            # The next predict is served from the new generation.
            status, _, headers = _post(
                f"{base}/predict-home", {"users": [{"user_id": 1}]}
            )
            assert status == 200
            assert headers["X-World-Generation"] == "1"
            _, hz = _get(f"{base}/healthz")
            assert hz["world"]["generation"] == 1
            assert hz["serving"]["store"]["generation"] == 1
        finally:
            ft.stop()
            store.close()

    def test_rcu_interleaved_ingest_predict_bit_identity(
        self, result, tmp_path
    ):
        """The RCU property: concurrent publishes + predict traffic.

        Every response must match a fresh single-process solve against
        the generation named in its ``X-World-Generation`` header --
        the local reference chain replays the same deltas through
        ``apply_delta`` (pure, deterministic), so generation g's world
        is reconstructible exactly.
        """
        ft, frontend, predictor, store = _spawn(
            result, tmp_path, n_workers=2, coalesce_ms=1.0
        )
        try:
            base = f"http://127.0.0.1:{ft.port}"
            gazetteer = predictor.world.gazetteer
            n_ingests = 4
            deltas = [
                WorldDelta.from_payload(
                    self._ingest_body(i, label_user=(i * 3) % 40),
                    gazetteer=gazetteer,
                )
                for i in range(n_ingests)
            ]
            observations = []
            obs_lock = threading.Lock()
            stop = threading.Event()
            errors = []

            def predict_loop(worker_seed):
                specs = [
                    {"user_id": (worker_seed * 11 + k) % 80}
                    for k in range(3)
                ] + [{"friends": [worker_seed, worker_seed + 5]}]
                while not stop.is_set():
                    for spec in specs:
                        try:
                            status, body, headers = _post(
                                f"{base}/predict-home", {"users": [spec]}
                            )
                        except Exception as exc:  # pragma: no cover
                            errors.append(exc)
                            return
                        if status != 200:
                            errors.append((status, body))
                            return
                        with obs_lock:
                            observations.append(
                                (
                                    spec,
                                    body,
                                    int(headers["X-World-Generation"]),
                                )
                            )

            threads = [
                threading.Thread(target=predict_loop, args=(i,))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            ingest_hashes = []
            for i, delta in enumerate(deltas):
                time.sleep(0.05)
                status, body, _ = _post(
                    f"{base}/ingest",
                    self._ingest_body(i, label_user=(i * 3) % 40),
                )
                assert status == 200
                assert body["generation"] == i + 1
                ingest_hashes.append(body["world_hash"])
            time.sleep(0.15)
            stop.set()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors[:3]
            assert observations

            # Rebuild the generation chain locally (pure replay) and
            # check the server chained identically.
            base_world = compile_world(result.dataset)
            chain = {0: base_world}
            world = base_world
            for i, delta in enumerate(deltas):
                world = apply_delta(world, delta)
                chain[i + 1] = world
                assert world.content_hash == ingest_hashes[i]

            reference = FoldInPredictor(
                result, artifact_id="frontend-test"
            )
            seen_generations = set()
            for spec, body, generation in observations:
                assert generation in chain, (
                    f"response served from unpublished generation "
                    f"{generation}"
                )
                seen_generations.add(generation)
                reference.attach_world(chain[generation])
                resolved = reference.resolve_request(spec)
                expected = prediction_payload(
                    reference.predict(resolved, use_cache=False),
                    gazetteer,
                    top_k=3,
                )
                actual = body["predictions"][0]
                assert _strip_cached(actual) == _strip_cached(expected), (
                    spec,
                    generation,
                )
            # The interleaving actually spanned generations.
            assert len(seen_generations) >= 2
        finally:
            ft.stop()
            store.close()


class TestWorkerDeath:
    def test_kill_one_worker_degrades_not_corrupts(self, result, tmp_path):
        ft, frontend, predictor, store = _spawn(result, tmp_path)
        try:
            base = f"http://127.0.0.1:{ft.port}"
            victim = frontend.pool.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            for i in range(6):
                status, body, _ = _post(
                    f"{base}/predict-home", {"users": [{"user_id": i}]}
                )
                assert status == 200
                assert body["predictions"][0]["home"] is not None
            _, hz = _get(f"{base}/healthz")
            rows = {
                row["worker"]: row
                for row in hz["serving"]["worker_info"]
            }
            assert rows[0]["alive"] is False
            assert rows[1]["alive"] is True
        finally:
            ft.stop()
            store.close()

    def test_kill_all_workers_falls_back_inline(self, result, tmp_path):
        ft, frontend, predictor, store = _spawn(result, tmp_path)
        try:
            base = f"http://127.0.0.1:{ft.port}"
            before = COALESCE_DISPATCHES.labels(
                outcome="fallback_inline"
            ).value
            for worker in frontend.pool.workers:
                os.kill(worker.pid, signal.SIGKILL)
            status, body, headers = _post(
                f"{base}/predict-home", {"users": [{"user_id": 3}]}
            )
            assert status == 200
            assert body["predictions"][0]["home"] is not None
            assert headers["X-World-Generation"] == "0"
            after = COALESCE_DISPATCHES.labels(
                outcome="fallback_inline"
            ).value
            assert after > before
            _, hz = _get(f"{base}/healthz")
            assert all(
                not row["alive"]
                for row in hz["serving"]["worker_info"]
            )
        finally:
            ft.stop()
            store.close()


class TestGracefulShutdown:
    def test_drain_finishes_slow_inflight_request(
        self, result, tmp_path, monkeypatch
    ):
        ft, frontend, predictor, store = _spawn(result, tmp_path)
        base = f"http://127.0.0.1:{ft.port}"
        original = predictor.explain_edge

        def slow_explain(*args, **kwargs):
            time.sleep(0.6)
            return original(*args, **kwargs)

        monkeypatch.setattr(predictor, "explain_edge", slow_explain)
        outcome = {}

        def fire():
            outcome["response"] = _post(
                f"{base}/explain-edge",
                {"user": {"user_id": 3}, "neighbor": 7},
            )

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.15)  # the request is in flight and sleeping
        ft.stop(deadline_seconds=10.0)
        thread.join(timeout=15)
        status, body, _ = outcome["response"]
        assert status == 200
        assert body["neighbor"] == 7
        # The listener is really gone.
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(f"{base}/healthz", timeout=2)
        store.close()
