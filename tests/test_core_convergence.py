"""Tests for convergence tracking (Fig. 5 machinery)."""

import pytest

from repro.core.convergence import (
    ConvergenceTrace,
    IterationStats,
    trace_scale_reduction,
)


def make_trace(metrics):
    trace = ConvergenceTrace()
    for i, m in enumerate(metrics):
        trace.append(
            IterationStats(
                iteration=i,
                changed_fraction=0.5 / (i + 1),
                noise_following_fraction=0.1,
                noise_tweeting_fraction=0.2,
                metric=m,
            )
        )
    return trace


class TestTrace:
    def test_len(self):
        assert len(make_trace([0.1, 0.2])) == 2

    def test_changed_fractions(self):
        trace = make_trace([0.1, 0.2])
        assert trace.changed_fractions() == [0.5, 0.25]

    def test_metric_changes(self):
        trace = make_trace([0.10, 0.25, 0.24, 0.24])
        changes = trace.metric_changes()
        assert changes == pytest.approx([0.15, 0.01, 0.0])

    def test_metric_changes_skip_missing(self):
        trace = make_trace([0.1, None, 0.3])
        assert trace.metric_changes() == pytest.approx([0.2])

    def test_converged_at(self):
        trace = make_trace([0.1, 0.3, 0.301, 0.3015])
        assert trace.converged_at(tolerance=0.01) == 2

    def test_not_converged(self):
        trace = make_trace([0.1, 0.5, 0.1, 0.5])
        assert trace.converged_at(tolerance=0.01) is None

    def test_empty_trace(self):
        trace = ConvergenceTrace()
        assert trace.metric_changes() == []
        assert trace.converged_at() is None


class TestTraceScaleReduction:
    def test_identical_traces_are_converged(self):
        """Zero between-chain variance: finite-sample R-hat is <= 1."""
        traces = [make_trace([0.1, 0.2, 0.3]) for _ in range(3)]
        rhat = trace_scale_reduction(traces, "changed")
        assert 0.0 < rhat <= 1.0

    def test_burn_in_and_truncation(self):
        a = make_trace([0.1] * 6)
        b = make_trace([0.1] * 4)  # shorter: the longer trace truncates
        rhat = trace_scale_reduction([a, b], "changed", burn_in=1)
        assert rhat >= 0.0

    def test_divergent_changed_series_detected(self):
        flat = ConvergenceTrace()
        noisy = ConvergenceTrace()
        for i in range(6):
            flat.append(IterationStats(i, 0.10 + 0.001 * (i % 2), 0.1, 0.2))
            noisy.append(IterationStats(i, 0.90 + 0.001 * (i % 2), 0.1, 0.2))
        rhat = trace_scale_reduction([flat, noisy], "changed")
        assert rhat > 3.0

    def test_unknown_series_rejected(self):
        traces = [make_trace([0.1, 0.2]), make_trace([0.1, 0.2])]
        with pytest.raises(ValueError, match="series"):
            trace_scale_reduction(traces, "acceptance")


class TestRealConvergence:
    def test_changed_fraction_decreases_substantially(self, fitted_result):
        """The chain must settle: late sweeps change fewer assignments."""
        fractions = fitted_result.trace.changed_fractions()
        early = sum(fractions[:2]) / 2
        late = sum(fractions[-2:]) / 2
        assert late < early

    def test_noise_fractions_recorded(self, fitted_result):
        for stats in fitted_result.trace.iterations:
            assert 0.0 <= stats.noise_following_fraction <= 1.0
            assert 0.0 <= stats.noise_tweeting_fraction <= 1.0
