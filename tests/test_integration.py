"""End-to-end integration tests: the paper's claims at small scale.

These run real fits over a shared 250-user world (session fixtures) and
check the *direction* of the paper's headline comparisons.  Absolute
numbers are scale-dependent; directions are not.
"""

import pytest

from repro.baselines import HomeLocationExplainer, PopulationPriorBaseline
from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.methods import MLPMethod
from repro.evaluation.splits import single_holdout_split
from repro.evaluation.tasks import (
    run_multi_location_discovery,
)
from repro.text.venues import VenueExtractor


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=350, seed=23))


@pytest.fixture(scope="module")
def params():
    return MLPParams(n_iterations=16, burn_in=6, seed=1)


class TestHomePredictionBeatsPrior:
    def test_mlp_beats_population_prior(self, world, params):
        split = single_holdout_split(world, 0.2, seed=2)
        mlp = MLPMethod(
            params.with_overrides(track_edge_assignments=False)
        ).predict(split.train_dataset)
        pop = PopulationPriorBaseline().predict(split.train_dataset)
        truth = list(split.test_truth)
        gaz = world.gazetteer
        acc_mlp = accuracy_at(
            gaz, [mlp.home_of(u) for u in split.test_user_ids], truth
        )
        acc_pop = accuracy_at(
            gaz, [pop.home_of(u) for u in split.test_user_ids], truth
        )
        assert acc_mlp > acc_pop + 0.1


class TestMultiLocationRecall:
    def test_mlp_recall_beats_single_location_baseline(self, world, params):
        """The paper's Sec 5.2 claim: baselines miss secondary locations."""
        methods = [
            MLPMethod(params.with_overrides(track_edge_assignments=False)),
            PopulationPriorBaseline(),
        ]
        results = run_multi_location_discovery(
            world, methods, max_cohort=80, seed=0
        )
        mlp_dr = results["MLP"].dr(world, k=2)
        pop_dr = results["PopPrior"].dr(world, k=2)
        assert mlp_dr > pop_dr


class TestExplanation:
    def test_mlp_explains_multi_location_edges_better_than_home(
        self, world, params
    ):
        """Restricted to edges NOT based on both homes, MLP must win big:
        the home baseline is wrong on them *by construction*."""
        prediction = MLPMethod(params).predict(world)
        base = HomeLocationExplainer.from_ground_truth(world)
        base_assignments = base.edge_assignments(world)
        hard_edges = [
            s
            for s, e in enumerate(world.following)
            if e.true_x is not None
            and (
                e.true_x != world.users[e.follower].true_home
                or e.true_y != world.users[e.friend].true_home
            )
        ]
        assert hard_edges, "world must contain non-home edges"
        gaz = world.gazetteer
        def acc(assignments):
            hits = 0
            for s in hard_edges:
                px, py = assignments[s]
                e = world.following[s]
                if gaz.distance(px, e.true_x) <= 100 and gaz.distance(py, e.true_y) <= 100:
                    hits += 1
            return hits / len(hard_edges)

        assert acc(prediction.edge_assignments) > acc(base_assignments)


class TestTextPipelineIntegration:
    def test_rendered_tweets_rebuild_tweeting_relationships(self):
        """Generator -> raw text -> extractor -> same venue multiset."""
        ds = generate_world(
            SyntheticWorldConfig(n_users=40, seed=3, render_tweets=True)
        )
        extractor = VenueExtractor(ds.gazetteer)
        recovered = 0
        for tweet, edge in zip(ds.tweets, ds.tweeting):
            if edge.venue_id in extractor.extract_venue_ids(tweet.text):
                recovered += 1
        assert recovered / ds.n_tweeting > 0.9

    def test_profile_parser_reads_registered_labels(self, world):
        from repro.text.profile_parser import parse_profile_location

        gaz = world.gazetteer
        labeled = world.labeled_user_ids[:20]
        for uid in labeled:
            loc = gaz.by_id(world.observed_locations[uid])
            parsed = parse_profile_location(loc.name, gaz)
            assert parsed is not None
            assert parsed.location.location_id == loc.location_id


class TestSaveLoadFitRoundtrip:
    def test_fit_on_reloaded_dataset_matches(self, tmp_path, params):
        from repro.data.io import load_dataset, save_dataset

        ds = generate_world(SyntheticWorldConfig(n_users=80, seed=6))
        path = tmp_path / "world.json"
        save_dataset(ds, path)
        reloaded = load_dataset(path)
        p = params.with_overrides(n_iterations=6, burn_in=2)
        a = MLPModel(p).fit(ds)
        b = MLPModel(p).fit(reloaded)
        assert a.predicted_homes().tolist() == b.predicted_homes().tolist()
