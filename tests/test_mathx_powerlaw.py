"""Unit tests for the power-law family and its fitting."""

import numpy as np
import pytest

from repro.mathx.powerlaw import (
    PAPER_TWITTER_POWERLAW,
    PowerLaw,
    fit_power_law,
    r_squared_loglog,
)


class TestPowerLaw:
    def test_evaluates_formula(self):
        law = PowerLaw(alpha=-0.5, beta=0.01)
        assert law(4.0) == pytest.approx(0.01 * 4.0**-0.5)

    def test_clamps_below_min_x(self):
        law = PowerLaw(alpha=-0.5, beta=0.01, min_x=1.0)
        assert law(0.0) == law(1.0) == pytest.approx(0.01)
        assert law(0.5) == law(1.0)

    def test_vector_input(self):
        law = PowerLaw(alpha=-1.0, beta=1.0)
        out = law(np.array([1.0, 2.0, 4.0]))
        assert np.allclose(out, [1.0, 0.5, 0.25])

    def test_scalar_in_scalar_out(self):
        law = PowerLaw(alpha=-1.0, beta=1.0)
        assert isinstance(law(2.0), float)

    def test_log_prob_consistent(self):
        law = PowerLaw(alpha=-0.7, beta=0.02)
        assert law.log_prob(10.0) == pytest.approx(np.log(law(10.0)))

    def test_distance_kernel_drops_beta(self):
        law = PowerLaw(alpha=-0.5, beta=0.123)
        assert law.distance_kernel(9.0) == pytest.approx(9.0**-0.5)

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            PowerLaw(alpha=-0.5, beta=0.0)

    def test_rejects_nonpositive_min_x(self):
        with pytest.raises(ValueError):
            PowerLaw(alpha=-0.5, beta=1.0, min_x=0.0)

    def test_paper_constants(self):
        assert PAPER_TWITTER_POWERLAW.alpha == -0.55
        assert PAPER_TWITTER_POWERLAW.beta == 0.0045


class TestFitPowerLaw:
    def test_exact_recovery(self):
        x = np.logspace(0, 3, 30)
        truth = PowerLaw(alpha=-0.55, beta=0.0045)
        law = fit_power_law(x, truth(x))
        assert law.alpha == pytest.approx(-0.55, abs=1e-9)
        assert law.beta == pytest.approx(0.0045, rel=1e-9)

    def test_recovery_under_noise(self):
        rng = np.random.default_rng(0)
        x = np.logspace(0, 3, 100)
        truth = PowerLaw(alpha=-0.8, beta=0.01)
        p = truth(x) * np.exp(rng.normal(0, 0.1, size=x.size))
        law = fit_power_law(x, p)
        assert law.alpha == pytest.approx(-0.8, abs=0.05)

    def test_weighted_fit_prefers_heavy_points(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        p = np.array([0.1, 0.05, 0.01, 0.5])  # last point is an outlier
        w_out = np.array([1.0, 1.0, 1.0, 1e-9])
        law = fit_power_law(x, p, weights=w_out)
        # With the outlier suppressed, the slope must be negative.
        assert law.alpha < 0

    def test_zero_probabilities_dropped(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        p = np.array([0.1, 0.01, 0.0, 0.001])
        law = fit_power_law(x, p)
        assert law.alpha < 0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([0.5]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([0.0, 0.0]))

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([5.0, 5.0]), np.array([0.1, 0.2]))

    def test_rejects_bad_weights_shape(self):
        with pytest.raises(ValueError):
            fit_power_law(
                np.array([1.0, 2.0]), np.array([0.1, 0.2]), weights=np.array([1.0])
            )

    def test_min_x_carried_into_result(self):
        x = np.logspace(0, 2, 10)
        law = fit_power_law(x, PowerLaw(-0.5, 0.01)(x), min_x=2.5)
        assert law.min_x == 2.5


class TestRSquared:
    def test_perfect_fit_is_one(self):
        x = np.logspace(0, 3, 20)
        law = PowerLaw(alpha=-0.6, beta=0.02)
        assert r_squared_loglog(law, x, law(x)) == pytest.approx(1.0)

    def test_bad_fit_is_low(self):
        x = np.logspace(0, 3, 20)
        law = PowerLaw(alpha=-0.6, beta=0.02)
        wrong = PowerLaw(alpha=0.6 - 1e-12, beta=0.02)  # opposite slope
        p = law(x)
        assert r_squared_loglog(wrong, x, p) < 0.5

    def test_noise_reduces_r2(self):
        rng = np.random.default_rng(1)
        x = np.logspace(0, 3, 50)
        law = PowerLaw(alpha=-0.6, beta=0.02)
        noisy = law(x) * np.exp(rng.normal(0, 0.5, size=x.size))
        assert r_squared_loglog(law, x, noisy) < 1.0
