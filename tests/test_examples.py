"""Structural checks on the example scripts.

Full example runs take minutes; these tests verify each script is
importable, exposes a ``main`` entry point, and guards execution behind
``__main__`` (so importing never triggers a fit).
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
class TestExampleStructure:
    def test_parses(self, script):
        ast.parse(script.read_text())

    def test_has_main(self, script):
        tree = ast.parse(script.read_text())
        names = [
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        assert "main" in names

    def test_guarded_entry_point(self, script):
        assert 'if __name__ == "__main__":' in script.read_text()

    def test_has_docstring(self, script):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), f"{script.name} needs a docstring"

    def test_importable_without_side_effects(self, script):
        spec = importlib.util.spec_from_file_location(
            f"example_{script.stem}", script
        )
        module = importlib.util.module_from_spec(spec)
        # Executing the module body must not run a fit (guarded main).
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            assert callable(module.main)
        finally:
            sys.modules.pop(spec.name, None)


def test_at_least_five_examples():
    assert len(EXAMPLE_SCRIPTS) >= 5
