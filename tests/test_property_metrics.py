"""Property-based tests on the evaluation metrics and splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    accuracy_at,
    dp_of_user,
    dr_at_k,
    dr_of_user,
    explanation_accuracy,
)
from repro.geo.gazetteer import Gazetteer, Location


def _grid_gazetteer(n: int = 12) -> Gazetteer:
    """A small grid of cities ~70 miles apart."""
    locs = []
    for i in range(n):
        locs.append(
            Location(i, f"G{i}", "ZZ", 30.0 + (i // 4), -100.0 + (i % 4), 10)
        )
    return Gazetteer(locs)


GAZ = _grid_gazetteer()
loc_ids = st.integers(min_value=0, max_value=len(GAZ) - 1)


class TestAccuracyProperties:
    @given(st.lists(st.tuples(loc_ids, loc_ids), min_size=1, max_size=30))
    def test_bounded(self, pairs):
        pred = [p for p, _ in pairs]
        true = [t for _, t in pairs]
        acc = accuracy_at(GAZ, pred, true)
        assert 0.0 <= acc <= 1.0

    @given(st.lists(st.tuples(loc_ids, loc_ids), min_size=1, max_size=30))
    def test_monotone_in_miles(self, pairs):
        pred = [p for p, _ in pairs]
        true = [t for _, t in pairs]
        accs = [accuracy_at(GAZ, pred, true, miles=m) for m in (0, 50, 200, 5000)]
        assert accs == sorted(accs)

    @given(st.lists(loc_ids, min_size=1, max_size=30))
    def test_perfect_prediction(self, locs):
        assert accuracy_at(GAZ, locs, locs, miles=0.0) == 1.0


class TestDPDRProperties:
    @given(
        st.lists(loc_ids, min_size=1, max_size=6),
        st.lists(loc_ids, min_size=1, max_size=4),
    )
    def test_bounded(self, predicted, truth):
        assert 0.0 <= dp_of_user(GAZ, predicted, truth) <= 1.0
        assert 0.0 <= dr_of_user(GAZ, predicted, truth) <= 1.0

    @given(
        st.lists(loc_ids, min_size=1, max_size=6, unique=True),
        st.lists(loc_ids, min_size=1, max_size=4, unique=True),
    )
    def test_dr_monotone_in_k(self, ranking, truth):
        drs = [dr_at_k(GAZ, [ranking], [truth], k=k) for k in (1, 2, 3, 6)]
        assert drs == sorted(drs)

    @given(st.lists(loc_ids, min_size=1, max_size=5, unique=True))
    def test_predicting_exact_truth_is_perfect(self, truth):
        assert dp_of_user(GAZ, truth, truth) == 1.0
        assert dr_of_user(GAZ, truth, truth) == 1.0

    @given(
        st.lists(loc_ids, min_size=1, max_size=6),
        st.lists(loc_ids, min_size=1, max_size=4),
    )
    def test_dp_dr_duality(self, predicted, truth):
        """DP(pred, truth) == DR(truth, pred) -- the definitions are
        symmetric in their arguments."""
        assert dp_of_user(GAZ, predicted, truth) == pytest.approx(
            dr_of_user(GAZ, truth, predicted)
        )


class TestExplanationProperties:
    @given(
        st.lists(
            st.tuples(loc_ids, loc_ids, loc_ids, loc_ids),
            min_size=1,
            max_size=20,
        )
    )
    def test_bounded_and_monotone(self, rows):
        pred = [(a, b) for a, b, _, _ in rows]
        true = [(c, d) for _, _, c, d in rows]
        accs = [
            explanation_accuracy(GAZ, pred, true, miles=m)
            for m in (0, 100, 1000)
        ]
        assert all(0.0 <= a <= 1.0 for a in accs)
        assert accs == sorted(accs)

    @given(st.lists(st.tuples(loc_ids, loc_ids), min_size=1, max_size=20))
    def test_perfect_explanation(self, assignments):
        assert explanation_accuracy(GAZ, assignments, assignments) == 1.0


class TestSplitProperties:
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_folds_partition_labeled_users(self, small_world, n_folds, seed):
        from repro.evaluation.splits import k_fold_label_splits

        splits = k_fold_label_splits(small_world, n_folds=n_folds, seed=seed)
        tested = sorted(u for s in splits for u in s.test_user_ids)
        assert tested == sorted(small_world.labeled_user_ids)
        # Folds are disjoint.
        assert len(tested) == len(set(tested))
