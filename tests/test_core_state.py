"""Unit tests for sampler state: counts and assignment tallies."""

import numpy as np
import pytest

from repro.core.state import EdgeAssignmentTally, GibbsState, UserLocationCounts


class TestUserLocationCounts:
    def test_increment_decrement_roundtrip(self):
        counts = UserLocationCounts(3, 5)
        counts.increment(0, 2)
        counts.increment(0, 2)
        counts.decrement(0, 2)
        assert counts.phi[0, 2] == 1.0
        assert counts.total(0) == 1.0

    def test_negative_count_raises(self):
        counts = UserLocationCounts(2, 2)
        with pytest.raises(RuntimeError):
            counts.decrement(0, 0)

    def test_counts_over_candidates(self):
        counts = UserLocationCounts(1, 4)
        counts.increment(0, 1)
        counts.increment(0, 3)
        over = counts.counts_over(0, np.array([0, 1, 3]))
        assert over.tolist() == [0.0, 1.0, 1.0]

    def test_add_into_accumulates(self):
        counts = UserLocationCounts(1, 2)
        counts.increment(0, 0)
        acc = np.zeros((1, 2))
        counts.add_into(acc)
        counts.add_into(acc)
        assert acc[0, 0] == 2.0

    def test_row_returns_copy(self):
        counts = UserLocationCounts(1, 2)
        row = counts.row(0)
        row[0] = 99.0
        assert counts.phi[0, 0] == 0.0


class TestEdgeAssignmentTally:
    def test_modal_following(self):
        tally = EdgeAssignmentTally(1, 0)
        mu = np.array([0], dtype=np.int8)
        for xy in [(3, 4), (3, 4), (5, 6)]:
            tally.record_iteration(
                mu, np.array([xy[0]]), np.array([xy[1]]),
                np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64),
            )
        x, y, support = tally.modal_following(0)
        assert (x, y) == (3, 4)
        assert support == pytest.approx(2 / 3)

    def test_noise_samples_not_tallied(self):
        tally = EdgeAssignmentTally(1, 0)
        tally.record_iteration(
            np.array([1], dtype=np.int8), np.array([-1]), np.array([-1]),
            np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64),
        )
        assert tally.modal_following(0) is None
        assert tally.noise_probability_following(0) == 1.0

    def test_modal_tweeting(self):
        tally = EdgeAssignmentTally(0, 1)
        for z in [7, 7, 2]:
            tally.record_iteration(
                np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.array([0], dtype=np.int8), np.array([z]),
            )
        z, support = tally.modal_tweeting(0)
        assert z == 7
        assert support == pytest.approx(2 / 3)

    def test_noise_probability_tweeting(self):
        tally = EdgeAssignmentTally(0, 1)
        for nu in [0, 1, 1, 1]:
            tally.record_iteration(
                np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.array([nu], dtype=np.int8), np.array([5 if nu == 0 else -1]),
            )
        assert tally.noise_probability_tweeting(0) == 0.75

    def test_no_samples_raises(self):
        tally = EdgeAssignmentTally(1, 1)
        with pytest.raises(ValueError):
            tally.modal_following(0)
        with pytest.raises(ValueError):
            tally.noise_probability_following(0)


class TestGibbsState:
    def test_allocation_shapes(self):
        state = GibbsState(
            n_users=4, n_locations=6, n_following=3, n_tweeting=2,
            track_edges=True,
        )
        assert state.mu.shape == (3,)
        assert state.z.shape == (2,)
        assert state.user_counts.phi.shape == (4, 6)
        assert state.edge_tally is not None

    def test_tracking_disabled(self):
        state = GibbsState(2, 2, 1, 1, track_edges=False)
        assert state.edge_tally is None
        state.record_edge_snapshot()  # must be a no-op, not an error

    def test_theta_snapshot_accumulation(self):
        state = GibbsState(1, 2, 0, 0, track_edges=False)
        state.user_counts.increment(0, 1)
        state.accumulate_theta_snapshot()
        state.accumulate_theta_snapshot()
        mean = state.mean_theta_counts()
        assert mean[0, 1] == 1.0
        assert state.theta_samples == 2

    def test_mean_theta_requires_snapshots(self):
        state = GibbsState(1, 1, 0, 0, track_edges=False)
        with pytest.raises(RuntimeError):
            state.mean_theta_counts()
