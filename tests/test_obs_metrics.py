"""Unit tests for the metrics registry (repro.obs.metrics).

Covers registration semantics (get-or-create, kind/label conflicts),
counter/gauge/histogram behaviour, quantile estimation accuracy on a
known distribution, the enable/disable switch, in-place reset (handles
resolved before a reset keep recording after it), thread-safety under a
multi-thread hammer, and Prometheus exposition validity through the
independent parser in tests/promtext.py.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import promtext
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, render_prometheus


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRegistration:
    def test_get_or_create_returns_same_metric(self, registry):
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total", "different help ignored")
        assert a is b

    def test_kind_conflict_is_an_error(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_labelnames_conflict_is_an_error(self, registry):
        registry.counter("x_total", labelnames=("route",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labelnames=("method",))

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "9lives", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_buckets_only_for_histograms(self, registry):
        with pytest.raises(ValueError, match="only valid for histograms"):
            registry._register("g", "", "gauge", (), np.array([1.0]))

    def test_collect_preserves_registration_order(self, registry):
        names = [f"metric_{i}_total" for i in range(5)]
        for name in names:
            registry.counter(name)
        assert [m.name for m in registry.collect()] == names


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self, registry):
        c = registry.counter("hits_total")
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1)

    def test_labeled_children_are_independent(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        c.labels(route="/a").inc()
        c.labels(route="/b").inc(2)
        assert c.labels(route="/a").value == 1
        assert c.labels(route="/b").value == 2
        assert c.total() == 3

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(method="GET")
        with pytest.raises(ValueError, match="use .labels"):
            c.inc()

    def test_label_child_is_cached(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        assert c.labels(route="/a") is c.labels(route="/a")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("inflight")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7

    def test_callback_gauge(self, registry):
        g = registry.gauge("uptime_seconds")
        g.set_function(lambda: 42.5)
        assert g.value == 42.5


class TestHistogram:
    def test_observe_and_summary(self, registry):
        h = registry.histogram("latency_seconds")
        for value in (0.001, 0.002, 0.004, 0.008):
            h.observe(value)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(0.015)
        assert s["min"] == 0.001
        assert s["max"] == 0.008

    def test_empty_summary(self, registry):
        h = registry.histogram("latency_seconds")
        assert h.summary() == {"count": 0, "sum": 0.0}
        assert h.quantile(0.5) == 0.0

    def test_single_sample_quantiles_are_exact(self, registry):
        h = registry.histogram("latency_seconds")
        h.observe(0.0042)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0042)

    def test_quantiles_on_lognormal_within_bucket_resolution(self, registry):
        h = registry.histogram("latency_seconds")
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-5.0, sigma=0.5, size=20_000)
        for value in samples:
            h.observe(value)
        for q in (0.5, 0.95, 0.99):
            true = float(np.quantile(samples, q))
            estimate = h.quantile(q)
            # Log-bucketed at 5/decade: one bucket is a ~1.58x band, so
            # the interpolated estimate must land well within +-30%.
            assert estimate == pytest.approx(true, rel=0.30)

    def test_quantile_bounds_validated(self, registry):
        h = registry.histogram("latency_seconds")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_custom_buckets_must_increase(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h", buckets=np.array([1.0, 1.0, 2.0]))

    def test_time_context_manager(self, registry):
        h = registry.histogram("latency_seconds")
        with h.time():
            pass
        assert h.summary()["count"] == 1


class TestEnableDisable:
    def test_disabled_records_nothing(self, registry):
        c = registry.counter("hits_total")
        h = registry.histogram("latency_seconds")
        g = registry.gauge("inflight")
        previous = obs_metrics.set_enabled(False)
        try:
            c.inc()
            h.observe(1.0)
            g.set(5)
        finally:
            obs_metrics.set_enabled(previous)
        assert c.value == 0
        assert h.summary()["count"] == 0
        assert g.value == 0

    def test_set_enabled_returns_previous(self):
        previous = obs_metrics.set_enabled(False)
        try:
            assert obs_metrics.set_enabled(True) is False
            assert obs_metrics.set_enabled(True) is True
        finally:
            obs_metrics.set_enabled(previous)
            obs_metrics.set_enabled(previous)


class TestReset:
    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        handle = c.labels(route="/a")
        handle.inc(5)
        h = registry.histogram("latency_seconds")
        h.observe(0.5)
        registry.reset()
        assert handle.value == 0
        assert h.summary()["count"] == 0
        # Pre-resolved handles keep recording after the reset.
        handle.inc()
        assert c.labels(route="/a").value == 1


class TestThreadSafety:
    N_THREADS = 8
    N_OPS = 2_000

    def test_concurrent_counter_and_histogram(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        h = registry.histogram("latency_seconds", labelnames=("route",))
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(thread_id: int) -> None:
            child_c = c.labels(route=f"/{thread_id % 2}")
            child_h = h.labels(route=f"/{thread_id % 2}")
            barrier.wait()
            for i in range(self.N_OPS):
                child_c.inc()
                child_h.observe(0.001 * (i % 10 + 1))

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert c.total() == self.N_THREADS * self.N_OPS
        total_observed = sum(
            child.count for _, child in h.children()
        )
        assert total_observed == self.N_THREADS * self.N_OPS


class TestPrometheusRender:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        c = registry.counter(
            "repro_requests_total", "requests", labelnames=("route", "status")
        )
        c.labels(route="/predict-home", status="200").inc(3)
        c.labels(route="/ingest", status="400").inc()
        g = registry.gauge("repro_inflight", "in flight")
        g.set(2)
        h = registry.histogram(
            "repro_latency_seconds", "latency", labelnames=("route",)
        )
        for value in (0.001, 0.003, 0.2, 5.0):
            h.labels(route="/predict-home").observe(value)
        return registry

    def test_output_parses_and_has_no_duplicates(self):
        text = render_prometheus(self._populated())
        families = promtext.parse(text)
        assert set(families) == {
            "repro_requests_total",
            "repro_inflight",
            "repro_latency_seconds",
        }
        assert families["repro_requests_total"].kind == "counter"
        assert families["repro_inflight"].kind == "gauge"
        assert families["repro_latency_seconds"].kind == "histogram"

    def test_counter_values_roundtrip(self):
        text = render_prometheus(self._populated())
        families = promtext.parse(text)
        samples = {
            s.key: s.value for s in families["repro_requests_total"].samples
        }
        key = (
            "repro_requests_total",
            (("route", "/predict-home"), ("status", "200")),
        )
        assert samples[key] == 3

    def test_histogram_buckets_cumulative_and_count_consistent(self):
        text = render_prometheus(self._populated())
        family = promtext.parse(text)["repro_latency_seconds"]
        promtext.assert_histogram_consistent(family)
        count = [
            s for s in family.samples if s.name.endswith("_count")
        ][0]
        assert count.value == 4

    def test_label_escaping_roundtrips(self):
        registry = MetricsRegistry()
        c = registry.counter("weird_total", "w", labelnames=("k",))
        nasty = 'a"b\\c\nd'
        c.labels(k=nasty).inc()
        families = promtext.parse(render_prometheus(registry))
        (sample,) = families["weird_total"].samples
        assert sample.labels["k"] == nasty

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestSnapshot:
    def test_snapshot_shape(self, registry):
        c = registry.counter("hits_total", labelnames=("route",))
        c.labels(route="/a").inc(2)
        h = registry.histogram("latency_seconds")
        h.observe(0.5)
        snap = registry.snapshot()
        assert snap["hits_total"]["kind"] == "counter"
        assert snap["hits_total"]["series"]["route=/a"] == 2
        assert snap["latency_seconds"]["series"][""]["count"] == 1
