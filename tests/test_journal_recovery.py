"""Crash-recovery harness for the durable ingest journal.

Every scenario here is a *fault*, not a happy path: torn writes at
every byte offset of the last record, bit flips, duplicated tails,
stale or corrupt snapshots, a ``kill -9`` mid-ingest against a real
subprocess server.  The acceptance contract is the same throughout --
reopening the journal must land on a world bit-identical to applying
the longest valid delta prefix from scratch (chained hash *and*
full-array comparison), with no partial delta applied -- plus the
property-based satellite: random delta streams through the journal
replay to exactly the in-memory ``apply_delta`` sequence.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest
from faults import (
    assert_worlds_identical,
    duplicate_tail,
    flip_byte,
    journal_file,
    random_delta,
    recompiled,
    record_spans,
    truncate_at,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.columnar import compile_world
from repro.data.delta import apply_delta
from repro.data.journal import (
    DeltaJournal,
    JournalError,
    append_and_apply,
    journaled_ingest,
    open_journal,
    scan_journal,
)
from repro.serving.batch import score_population
from repro.serving.foldin import FoldInPredictor
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def base_world(tiny_world):
    return compile_world(tiny_world)


def build_journal(directory, base_world, seed=0, n=4, **delta_sizes):
    """Append ``n`` random deltas; returns ``(world, deltas, journal)``.

    The journal is left *open* (callers close or keep appending); the
    returned deltas are the golden prefix the recovery tests recompile.
    """
    rng = np.random.default_rng(seed)
    world, journal, _report = open_journal(directory, base_world)
    deltas = []
    for _ in range(n):
        delta = random_delta(world, rng, **delta_sizes)
        world = append_and_apply(journal, world, delta)
        deltas.append(delta)
    return world, deltas, journal


class TestCleanRecovery:
    def test_fresh_directory_recovers_to_base(self, base_world, tmp_path):
        world, journal, report = open_journal(tmp_path, base_world)
        assert world is base_world
        assert report["generation"] == 0
        assert report["records"] == 0
        assert journal_file(tmp_path).read_bytes()[:8] == b"RPWJ0001"
        journal.close()

    def test_reopen_is_bit_identical_to_memory_and_recompile(
        self, base_world, tmp_path
    ):
        world, deltas, journal = build_journal(tmp_path, base_world, n=5)
        journal.close()

        recovered, journal2, report = open_journal(tmp_path, base_world)
        journal2.close()
        assert report["replayed"] == 5
        assert report["dropped_records"] == 0
        assert recovered.generation == world.generation == 5
        # The chained hash is the identity the journal promised...
        assert recovered.content_hash == world.content_hash
        # ...and the arrays are bit-identical both to the in-memory
        # apply_delta sequence and to a from-scratch recompile of the
        # same prefix (the golden contract).
        assert_worlds_identical(recovered, world)
        assert_worlds_identical(recovered, recompiled(base_world, deltas))

    def test_appends_continue_across_reopen(self, base_world, tmp_path):
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.close()

        world2, journal2, _ = open_journal(tmp_path, base_world)
        rng = np.random.default_rng(99)
        extra = random_delta(world2, rng)
        world2 = append_and_apply(journal2, world2, extra)
        assert world2.generation == 4
        journal2.close()

        world3, journal3, _ = open_journal(tmp_path, base_world)
        journal3.close()
        assert world3.content_hash == world2.content_hash
        assert_worlds_identical(
            world3, recompiled(base_world, deltas + [extra])
        )

    def test_out_of_order_append_is_rejected(self, base_world, tmp_path):
        world, _deltas, journal = build_journal(tmp_path, base_world, n=2)
        rng = np.random.default_rng(5)
        delta = random_delta(world, rng)
        with pytest.raises(JournalError, match="out of order"):
            journal.append(delta, world.generation + 2, world.content_hash)
        journal.close()

    def test_invalid_delta_never_reaches_the_journal(
        self, base_world, tmp_path
    ):
        from repro.data.delta import WorldDelta

        world, _deltas, journal = build_journal(tmp_path, base_world, n=2)
        before = journal_file(tmp_path).read_bytes()
        bad = WorldDelta.from_payload(
            {"edges": [[0, world.n_users + 50]]}  # unknown endpoint
        )
        with pytest.raises(ValueError):
            append_and_apply(journal, world, bad)
        journal.close()
        assert journal_file(tmp_path).read_bytes() == before


class TestTornWrite:
    def test_truncation_at_every_byte_of_last_record(
        self, base_world, tmp_path
    ):
        """A torn final append always recovers the n-1 prefix, exactly."""
        world, deltas, journal = build_journal(
            tmp_path, base_world, n=4, n_new=2, n_edges=5, n_tweets=5
        )
        journal.close()
        spans = record_spans(tmp_path)
        last_start, last_end = spans[-1]
        original = journal_file(tmp_path).read_bytes()
        golden = recompiled(base_world, deltas[:-1])
        prefix = base_world
        for delta in deltas[:-1]:
            prefix = apply_delta(prefix, delta)
        expected_hash = prefix.content_hash

        for offset in range(last_start, last_end):
            journal_file(tmp_path).write_bytes(original[:offset])
            recovered, journal2, report = open_journal(tmp_path, base_world)
            journal2.close()
            assert recovered.generation == 3, f"offset {offset}"
            assert recovered.content_hash == expected_hash, f"offset {offset}"
            # The torn suffix was repaired away: the file now ends at
            # the last valid record and scans clean.
            assert journal_file(tmp_path).stat().st_size == last_start
            _records, _end, error = scan_journal(journal_file(tmp_path))
            assert error is None
            if offset in (last_start, last_start + 40, last_end - 1):
                # Full-array golden comparison on a sample of offsets
                # (every offset checks generation + chained hash).
                assert_worlds_identical(recovered, golden)

    def test_recovered_journal_accepts_new_appends(
        self, base_world, tmp_path
    ):
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.close()
        last_start, last_end = record_spans(tmp_path)[-1]
        truncate_at(tmp_path, last_start + (last_end - last_start) // 2)

        recovered, journal2, _ = open_journal(tmp_path, base_world)
        assert recovered.generation == 2
        rng = np.random.default_rng(7)
        delta = random_delta(recovered, rng)
        recovered = append_and_apply(journal2, recovered, delta)
        journal2.close()

        final, journal3, _ = open_journal(tmp_path, base_world)
        journal3.close()
        assert final.generation == 3
        assert_worlds_identical(
            final, recompiled(base_world, deltas[:2] + [delta])
        )


class TestBitFlip:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_flip_inside_a_record_drops_it_and_its_suffix(
        self, base_world, tmp_path, victim
    ):
        world, deltas, journal = build_journal(
            tmp_path / str(victim), base_world, n=4
        )
        journal.close()
        directory = tmp_path / str(victim)
        spans = record_spans(directory)
        start, end = spans[victim + 1]  # flip record victim+1 (1-based 2..4)
        flip_byte(directory, (start + end) // 2)

        recovered, journal2, report = open_journal(directory, base_world)
        journal2.close()
        # Prefix-consistent: everything before the corrupt record, and
        # nothing after it (no partial delta, no resync past the hole).
        assert recovered.generation == victim + 1
        assert report["scan_error"] is not None
        assert_worlds_identical(
            recovered, recompiled(base_world, deltas[: victim + 1])
        )
        assert journal_file(directory).stat().st_size == start

    def test_flip_in_length_header_is_contained(self, base_world, tmp_path):
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.close()
        start, _end = record_spans(tmp_path)[-1]
        flip_byte(tmp_path, start + 2, mask=0x40)  # inflate body_len
        recovered, journal2, _ = open_journal(tmp_path, base_world)
        journal2.close()
        assert recovered.generation == 2
        assert_worlds_identical(
            recovered, recompiled(base_world, deltas[:2])
        )


class TestDuplicateTail:
    def test_duplicated_last_record_replays_once(self, base_world, tmp_path):
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.close()
        duplicate_tail(tmp_path)

        recovered, journal2, report = open_journal(tmp_path, base_world)
        assert recovered.generation == 3
        assert report["replayed"] == 3
        assert report["skipped"] == 1
        assert_worlds_identical(recovered, recompiled(base_world, deltas))

        # The journal stays appendable past the duplicate.
        rng = np.random.default_rng(21)
        delta = random_delta(recovered, rng)
        recovered = append_and_apply(journal2, recovered, delta)
        journal2.close()
        final, journal3, _ = open_journal(tmp_path, base_world)
        journal3.close()
        assert final.generation == 4
        assert_worlds_identical(
            final, recompiled(base_world, deltas + [delta])
        )

    def test_conflicting_same_generation_record_stops_the_scan(
        self, base_world, tmp_path
    ):
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.close()
        duplicate_tail(tmp_path)
        # Corrupt the duplicate's *payload* but fix up its CRC so it is
        # structurally valid yet disagrees with the original record.
        path = journal_file(tmp_path)
        data = bytearray(path.read_bytes())
        spans = record_spans(tmp_path)
        start, end = spans[-1]
        dup_start = len(data) - (end - start)
        body = bytearray(data[dup_start + 8 : len(data)])
        # Flip one payload digit to another digit: the record stays
        # structurally valid JSON but disagrees with the original.
        for i in range(24, len(body)):  # skip the generation+hash head
            if 0x30 <= body[i] <= 0x38:
                body[i] ^= 0x01
                break
        import struct
        import zlib

        data[dup_start : dup_start + 8] = struct.pack(
            "<II", len(body), zlib.crc32(bytes(body))
        )
        data[dup_start + 8 :] = body
        path.write_bytes(bytes(data))

        recovered, journal2, report = open_journal(tmp_path, base_world)
        journal2.close()
        assert recovered.generation == 3
        assert "conflicting" in (report["scan_error"] or "")
        assert_worlds_identical(recovered, recompiled(base_world, deltas))


class TestSnapshots:
    def test_stale_snapshot_plus_tail(self, base_world, tmp_path):
        """A snapshot mid-stream (no truncation) shortcuts the replay."""
        rng = np.random.default_rng(3)
        world, journal, _ = open_journal(tmp_path, base_world)
        deltas = []
        for i in range(6):
            delta = random_delta(world, rng)
            world = append_and_apply(journal, world, delta)
            deltas.append(delta)
            if i == 2:
                journal.snapshot(world)  # checkpoint at generation 3
        journal.close()

        recovered, journal2, report = open_journal(tmp_path, base_world)
        journal2.close()
        assert report["snapshot_generation"] == 3
        assert report["replayed"] == 3  # generations 4..6 only
        assert report["skipped"] == 3  # 1..3 are behind the snapshot
        assert recovered.generation == 6
        assert recovered.content_hash == world.content_hash
        assert_worlds_identical(recovered, recompiled(base_world, deltas))

    def test_corrupt_snapshot_falls_back_to_full_replay(
        self, base_world, tmp_path
    ):
        rng = np.random.default_rng(4)
        world, journal, _ = open_journal(tmp_path, base_world)
        deltas = []
        for i in range(4):
            delta = random_delta(world, rng)
            world = append_and_apply(journal, world, delta)
            deltas.append(delta)
            if i == 1:
                snap = journal.snapshot(world)
        journal.close()
        # Corrupt the checkpoint: recovery must reject it on the
        # recorded digest and replay the whole journal from base.
        data = bytearray(snap.read_bytes())
        data[len(data) // 2] ^= 0xFF
        snap.write_bytes(bytes(data))

        recovered, journal2, report = open_journal(tmp_path, base_world)
        journal2.close()
        assert report["snapshot"] is None
        assert report["replayed"] == 4
        assert recovered.content_hash == world.content_hash
        assert_worlds_identical(recovered, recompiled(base_world, deltas))

    def test_missing_snapshot_behind_compacted_tail_refuses(
        self, base_world, tmp_path
    ):
        """Deleting the snapshot a compacted journal depends on must
        raise, not silently truncate recoverable history."""
        world, deltas, journal = build_journal(tmp_path, base_world, n=3)
        journal.compact(world)
        rng = np.random.default_rng(8)
        world = append_and_apply(journal, world, random_delta(world, rng))
        journal.close()
        for snap in DeltaJournal(tmp_path).snapshot_paths():
            snap.unlink()
        with pytest.raises(JournalError, match="snapshot missing or corrupt"):
            open_journal(tmp_path, base_world)

    def test_compaction_bounds_replay_and_prunes_snapshots(
        self, base_world, tmp_path
    ):
        world, deltas, journal = build_journal(tmp_path, base_world, n=4)
        out = journal.compact(world)
        assert out["records_compacted"] == 4
        rng = np.random.default_rng(17)
        tail = [random_delta(world, rng)]
        world = append_and_apply(journal, world, tail[0])
        out2 = journal.compact(world)
        tail.append(random_delta(world, rng))
        world = append_and_apply(journal, world, tail[1])
        journal.close()
        # Pruned down to SNAPSHOTS_KEPT=2 snapshots as compactions pile up.
        assert len(DeltaJournal(tmp_path).snapshot_paths()) == 2

        recovered, journal2, report = open_journal(tmp_path, base_world)
        assert report["snapshot_generation"] == 5
        assert report["replayed"] == 1  # only the post-compaction tail
        assert recovered.generation == 6
        assert_worlds_identical(
            recovered, recompiled(base_world, deltas + tail)
        )
        # touched_since floor is the compaction point: asking behind it
        # is an explicit error, asking at-or-after it answers exactly.
        with pytest.raises(ValueError, match="behind the last snapshot"):
            journal2.touched_since(2)
        touched = journal2.touched_since(5)
        assert np.array_equal(
            touched, np.unique(recovered.delta_log[-1].touched_users)
        )
        journal2.close()

    def test_foreign_journal_refuses_instead_of_truncating(
        self, base_world, small_world, tmp_path
    ):
        """A journal whose chain starts elsewhere must not be 'repaired'."""
        world, _deltas, journal = build_journal(tmp_path, base_world, n=2)
        journal.close()
        other = compile_world(small_world)
        with pytest.raises(JournalError, match="does not chain"):
            open_journal(tmp_path, other)


class TestWindowOverrun:
    """Satellite: the journal is authoritative past DELTA_LOG_LIMIT."""

    def test_journal_touched_since_survives_log_window(
        self, base_world, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.data.delta.DELTA_LOG_LIMIT", 4)
        from repro.data.delta import touched_since

        rng = np.random.default_rng(11)
        world, journal, _ = open_journal(tmp_path, base_world)
        all_touched = []
        for _ in range(8):
            delta = random_delta(world, rng, n_new=2, n_edges=4, n_tweets=4)
            world = append_and_apply(journal, world, delta)
            all_touched.append(world.delta_log[-1].touched_users)
        # The in-memory log kept only the last 4 generations...
        assert len(world.delta_log) == 4
        with pytest.raises(ValueError, match="reaches past the retained"):
            touched_since(world, 0)
        # ...but the journal answers the full window, exactly.
        expected = np.unique(np.concatenate(all_touched))
        assert np.array_equal(journal.touched_since(0), expected)
        journal.close()

        # And the index survives a restart: replay rebuilds it.
        _world2, journal2, _ = open_journal(tmp_path, base_world)
        assert np.array_equal(journal2.touched_since(0), expected)
        journal2.close()

    def test_score_population_reads_the_journal_window(
        self, small_world, fitted_result, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.data.delta.DELTA_LOG_LIMIT", 3)
        predictor = FoldInPredictor(fitted_result)
        _world, journal, _ = open_journal(tmp_path, predictor.world)
        rng = np.random.default_rng(23)
        for _ in range(5):
            delta = random_delta(
                predictor.world, rng, n_new=1, n_edges=2, n_tweets=2,
                n_labels=1,
            )
            journaled_ingest(predictor, journal, delta)
        world = predictor.world
        assert len(world.delta_log) == 3  # window overrun

        # Without the journal the since-window is unanswerable...
        with pytest.raises(ValueError):
            score_population(
                world, fitted_result, predictor=predictor,
                since_generation=0,
            )
        # ...with it, exactly the touched unlabeled slice is scored.
        predictions = score_population(
            world, fitted_result, predictor=predictor,
            since_generation=0, journal=journal,
        )
        journal.close()
        unlabeled = np.flatnonzero(~world.labeled_mask)
        expected_ids = np.intersect1d(
            unlabeled, journal.touched_since(0), assume_unique=True
        )
        assert sorted(predictions) == expected_ids.tolist()
        assert all(p.profile is not None for p in predictions.values())


class TestPropertyBased:
    """Satellite: random streams -- journal replay == in-memory apply."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_deltas=st.integers(min_value=1, max_value=6),
        compact_at=st.integers(min_value=0, max_value=6),
    )
    def test_replay_equals_in_memory_sequence(
        self, base_world, seed, n_deltas, compact_at
    ):
        rng = np.random.default_rng(seed)
        with tempfile.TemporaryDirectory() as directory:
            world, journal, _ = open_journal(directory, base_world)
            in_memory = base_world
            for i in range(n_deltas):
                delta = random_delta(
                    world, rng,
                    n_new=int(rng.integers(0, 4)),
                    n_edges=int(rng.integers(1, 8)),
                    n_tweets=int(rng.integers(0, 8)),
                    n_labels=int(rng.integers(0, 3)),
                )
                world = append_and_apply(journal, world, delta)
                in_memory = apply_delta(in_memory, delta)
                if i + 1 == compact_at:
                    journal.compact(world)
            journal.close()

            recovered, journal2, _ = open_journal(directory, base_world)
            journal2.close()
            assert recovered.generation == in_memory.generation
            assert recovered.content_hash == in_memory.content_hash
            assert_worlds_identical(recovered, in_memory)


class TestJournaledServer:
    """In-process server wiring: write-ahead /ingest + journaled /healthz."""

    @pytest.fixture()
    def served(self, fitted_result, tmp_path):
        predictor = FoldInPredictor(fitted_result, artifact_id="jrnl-test")
        _world, journal, _ = open_journal(tmp_path, predictor.world)
        server = make_server(predictor, port=0, journal=journal)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base, predictor, journal, tmp_path
        server.shutdown()
        server.server_close()
        journal.close()

    @staticmethod
    def _post(base, route, payload):
        request = urllib.request.Request(
            base + route,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    @staticmethod
    def _get(base, route):
        with urllib.request.urlopen(base + route) as response:
            return json.loads(response.read())

    def test_ingest_is_journaled_and_healthz_reports_it(self, served):
        base, predictor, journal, directory = served
        n = predictor.world.n_users
        out = self._post(
            base, "/ingest",
            {"new_users": [{}], "edges": [[0, n]], "tweets": [[n, 1]]},
        )
        assert out["generation"] == 1
        assert out["journal"]["records"] == 1
        assert out["journal"]["generation"] == 1
        health = self._get(base, "/healthz")
        assert health["journal"]["generation"] == 1
        assert health["journal"]["pending_fsync"] == 0  # fsync_every=1

    def test_bad_delta_rejected_without_touching_the_journal(self, served):
        base, predictor, journal, directory = served
        before = journal_file(directory).read_bytes()
        request = urllib.request.Request(
            base + "/ingest",
            data=json.dumps({"edges": [[1, 1]]}).encode(),  # self-follow
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        assert journal_file(directory).read_bytes() == before
        assert predictor.world.generation == 0

    def test_restart_preserves_generation(self, served, fitted_result):
        base, predictor, journal, directory = served
        n = predictor.world.n_users
        for i in range(3):
            self._post(base, "/ingest", {"edges": [[i, n - 1 - i]]})
        pre_crash = self._get(base, "/healthz")
        assert pre_crash["world"]["generation"] == 3

        # "Restart": recover the directory into a fresh predictor/server.
        base_world = compile_world(fitted_result.dataset)
        world, journal2, report = open_journal(directory, base_world)
        predictor2 = FoldInPredictor(
            fitted_result, artifact_id="jrnl-test", world=world
        )
        server2 = make_server(predictor2, port=0, journal=journal2)
        thread = threading.Thread(target=server2.serve_forever, daemon=True)
        thread.start()
        try:
            health = self._get(
                f"http://127.0.0.1:{server2.server_address[1]}", "/healthz"
            )
            assert health["world"]["generation"] == 3
            assert health["journal"]["generation"] == 3
        finally:
            server2.shutdown()
            server2.server_close()
            journal2.close()


REPO_ROOT = Path(__file__).resolve().parent.parent


class TestKillNineMidIngest:
    """The real thing: a subprocess server SIGKILLed while ingesting."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        """A small artifact fit through the real CLI."""
        from repro.cli import main

        root = tmp_path_factory.mktemp("kill9")
        dataset = root / "world.json"
        artifact = root / "model.mlp.npz"
        assert main(
            ["generate", str(dataset), "--users", "80", "--seed", "3"]
        ) == 0
        assert main(
            [
                "fit", str(dataset),
                "--iterations", "4", "--burn-in", "1",
                "--save-artifact", str(artifact),
            ]
        ) == 0
        return artifact

    def _spawn(self, artifact, journal_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(artifact),
                "--port", "0", "--journal", str(journal_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        port = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited early (rc {proc.poll()})"
                )
            if "on http://" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, "server never reported its port"
        return proc, port

    def test_kill9_recovers_every_acknowledged_delta(
        self, artifact, tmp_path
    ):
        journal_dir = tmp_path / "journal"
        proc, port = self._spawn(artifact, journal_dir)
        base = f"http://127.0.0.1:{port}"
        acknowledged = []
        try:
            n_users = None
            with urllib.request.urlopen(base + "/healthz") as response:
                n_users = json.loads(response.read())["world"]["users"]
            # 8 synchronous ingests: each acknowledged before the next.
            for i in range(8):
                payload = {
                    "new_users": [{}],
                    "edges": [[i % n_users, n_users + i]],
                }
                request = urllib.request.Request(
                    base + "/ingest", data=json.dumps(payload).encode()
                )
                with urllib.request.urlopen(request) as response:
                    acknowledged.append(json.loads(response.read()))
            # A few more in flight from a thread while we pull the plug.
            def racer():
                for j in range(8, 12):
                    try:
                        payload = {"new_users": [{}]}
                        request = urllib.request.Request(
                            base + "/ingest",
                            data=json.dumps(payload).encode(),
                        )
                        urllib.request.urlopen(request, timeout=5).read()
                    except OSError:
                        return

            thread = threading.Thread(target=racer)
            thread.start()
            proc.send_signal(signal.SIGKILL)
            thread.join(timeout=10)
        finally:
            proc.kill()
            proc.wait(timeout=30)
            proc.stdout.close()

        # Recover offline: every acknowledged delta must be there.
        from repro.data.delta import WorldDelta
        from repro.serving.artifacts import load_result

        result = load_result(artifact)
        base_world = compile_world(result.dataset)
        world, journal, report = open_journal(journal_dir, base_world)
        assert world.generation >= 8
        assert world.generation == acknowledged[-1]["generation"] or (
            world.generation > 8  # racer deltas that also landed
        )
        assert world.content_hash != base_world.content_hash
        # Golden check: replaying the journal's own payloads from
        # scratch lands on the identical world (prefix-consistent, no
        # partial delta).
        records, _end, _err = scan_journal(journal.path)
        deltas = [
            WorldDelta.from_payload(r.payload)
            for r in records
            if not r.duplicate
        ]
        assert_worlds_identical(world, recompiled(base_world, deltas))
        for i, ack in enumerate(acknowledged):
            assert records[i].generation == ack["generation"]
            assert records[i].world_hash == ack["world_hash"]
        journal.close()

        # Restart under the same --journal: /healthz reports the
        # pre-crash generation.
        proc2, port2 = self._spawn(artifact, journal_dir)
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port2}/healthz"
            ) as response:
                health = json.loads(response.read())
            assert health["world"]["generation"] == world.generation
            assert health["journal"]["generation"] == world.generation
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc2.kill()
                proc2.wait(timeout=10)
            proc2.stdout.close()
