"""Artifact store tests: save -> load round-trips bit-for-bit."""

import json
import zipfile

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.artifacts import (
    ARTIFACT_VERSION,
    ArtifactError,
    artifact_metadata,
    load_result,
    save_result,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(
        SyntheticWorldConfig(n_users=60, seed=4, render_tweets=True)
    )


def _params(**overrides) -> MLPParams:
    base = dict(n_iterations=8, burn_in=3, seed=1)
    base.update(overrides)
    return MLPParams(**base)


@pytest.fixture(scope="module")
def loop_result(world):
    return MLPModel(_params(engine="loop")).fit(world)


@pytest.fixture(scope="module")
def vectorized_result(world):
    return MLPModel(_params(engine="vectorized")).fit(world)


@pytest.fixture(scope="module")
def pooled_result(world):
    return MLPModel(_params(engine="vectorized", n_chains=2)).fit(world)


def _assert_round_trip(result, loaded):
    assert loaded.params == result.params
    assert loaded.profiles == result.profiles
    assert loaded.explanations == result.explanations
    assert loaded.tweet_explanations == result.tweet_explanations
    assert loaded.trace == result.trace
    assert loaded.law_history == result.law_history
    assert np.array_equal(loaded.venue_counts, result.venue_counts)
    # The embedded dataset survives through the data.io wire format.
    assert loaded.dataset.users == result.dataset.users
    assert loaded.dataset.following == result.dataset.following
    assert loaded.dataset.tweeting == result.dataset.tweeting
    assert loaded.dataset.tweets == result.dataset.tweets
    assert (
        loaded.dataset.gazetteer.locations
        == result.dataset.gazetteer.locations
    )


class TestRoundTrip:
    @pytest.mark.parametrize("fixture", ["loop_result", "vectorized_result"])
    def test_single_chain_round_trip(self, fixture, request, tmp_path):
        result = request.getfixturevalue(fixture)
        path = tmp_path / "model.mlp.npz"
        save_result(result, path)
        _assert_round_trip(result, load_result(path))

    def test_engines_agree_through_artifacts(
        self, loop_result, vectorized_result, tmp_path
    ):
        """Bit-identical chains stay bit-identical through the store."""
        a = tmp_path / "loop.mlp.npz"
        b = tmp_path / "vec.mlp.npz"
        save_result(loop_result, a)
        save_result(vectorized_result, b)
        assert load_result(a).profiles == load_result(b).profiles

    def test_multi_chain_posterior_round_trip(self, pooled_result, tmp_path):
        path = tmp_path / "pooled.mlp.npz"
        save_result(pooled_result, path)
        loaded = load_result(path)
        _assert_round_trip(pooled_result, loaded)
        original = pooled_result.posterior
        restored = loaded.posterior
        assert restored is not None
        assert restored.n_chains == original.n_chains
        assert restored.burn_in == original.burn_in
        assert np.array_equal(
            restored.pooled_mean_counts(), original.pooled_mean_counts()
        )
        assert np.array_equal(
            restored.pooled_mean_venue_counts(),
            original.pooled_mean_venue_counts(),
        )
        for chain_a, chain_b in zip(original.chains, restored.chains):
            assert chain_b.chain_index == chain_a.chain_index
            assert chain_b.seed == chain_a.seed
            assert chain_b.trace == chain_a.trace
            assert chain_b.law_history == chain_a.law_history
            for key in ("mu", "x", "y", "nu", "z"):
                assert np.array_equal(
                    chain_b.final_state[key], chain_a.final_state[key]
                )
            tally_a = chain_a.edge_tally.to_arrays()
            tally_b = chain_b.edge_tally.to_arrays()
            assert tally_a.keys() == tally_b.keys()
            for key in tally_a:
                assert np.array_equal(tally_a[key], tally_b[key])
        # R-hat is a pure function of the round-tripped traces.
        assert restored.convergence_summary() == original.convergence_summary()

    def test_merged_tally_survives(self, pooled_result, tmp_path):
        path = tmp_path / "pooled.mlp.npz"
        save_result(pooled_result, path)
        loaded = load_result(path)
        merged_a = pooled_result.posterior.merged_edge_tally()
        merged_b = loaded.posterior.merged_edge_tally()
        for s in range(min(20, len(pooled_result.dataset.following))):
            assert merged_b.modal_following(s) == merged_a.modal_following(s)

    def test_artifact_id_deterministic(self, loop_result, tmp_path):
        a = tmp_path / "a.mlp.npz"
        b = tmp_path / "b.mlp.npz"
        id_a = save_result(loop_result, a)
        id_b = save_result(loop_result, b)
        assert id_a == id_b
        assert artifact_metadata(a)["artifact_id"] == id_a

    def test_metadata_without_arrays(self, vectorized_result, tmp_path):
        path = tmp_path / "m.mlp.npz"
        save_result(vectorized_result, path)
        meta = artifact_metadata(path)
        assert meta["format_version"] == ARTIFACT_VERSION
        assert meta["n_users"] == 60
        assert meta["params"]["engine"] == "vectorized"
        assert meta["posterior"] is None

    def test_path_is_not_renamed(self, loop_result, tmp_path):
        """No silent '.npz' suffix appending (np.savez behaviour)."""
        path = tmp_path / "artifact.bin"
        save_result(loop_result, path)
        assert path.exists()
        assert not (tmp_path / "artifact.bin.npz").exists()


class TestErrors:
    def test_unknown_version_rejected(self, loop_result, tmp_path):
        path = tmp_path / "old.mlp.npz"
        save_result(loop_result, path)
        # Rewrite the meta record with a bumped version.
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays["meta"][()]))
        meta["format_version"] = ARTIFACT_VERSION + 999
        arrays["meta"] = np.array(json.dumps(meta))
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ArtifactError, match="version"):
            load_result(path)

    def test_corrupted_file_rejected(self, tmp_path):
        path = tmp_path / "junk.mlp.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(ArtifactError, match="not a readable"):
            load_result(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(ArtifactError, match="no metadata"):
            load_result(path)

    def test_truncated_artifact_rejected(self, loop_result, tmp_path):
        path = tmp_path / "trunc.mlp.npz"
        save_result(loop_result, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {
                k: data[k] for k in data.files if k != "prof_counts"
            }
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ArtifactError, match="truncated"):
            load_result(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "missing.mlp.npz")

    def test_artifact_error_is_value_error(self):
        assert issubclass(ArtifactError, ValueError)

    def test_zip_of_wrong_content_rejected(self, tmp_path):
        path = tmp_path / "notnpz.mlp.npz"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("readme.txt", "hello")
        with pytest.raises(ArtifactError):
            load_result(path)


class TestWorldPersistence:
    """Artifacts carry the compiled columnar world: load re-attaches it."""

    def test_world_arrays_persisted(self, loop_result, tmp_path):
        from repro.data.columnar import WORLD_ARRAY_KEYS, compile_world

        path = tmp_path / "w.mlp.npz"
        save_result(loop_result, path)
        meta = artifact_metadata(path)
        assert meta["world_hash"] == compile_world(
            loop_result.dataset
        ).content_hash
        with np.load(path) as data:
            for key in WORLD_ARRAY_KEYS:
                assert f"world_{key}" in data.files

    def test_load_reattaches_without_recompiling(self, loop_result, tmp_path):
        from repro.data import columnar

        path = tmp_path / "w.mlp.npz"
        save_result(loop_result, path)
        loaded = load_result(path)
        before = columnar.compile_count()
        world = columnar.compile_world(loaded.dataset)
        assert columnar.compile_count() == before  # no re-index on load
        assert world.content_hash == columnar.compile_world(
            loop_result.dataset
        ).content_hash

    def test_foldin_uses_persisted_world(self, loop_result, tmp_path):
        from repro.data import columnar
        from repro.serving.foldin import FoldInPredictor

        path = tmp_path / "w.mlp.npz"
        save_result(loop_result, path)
        loaded = load_result(path)
        before = columnar.compile_count()
        predictor = FoldInPredictor(loaded)
        assert columnar.compile_count() == before
        spec = predictor.spec_for_training_user(0)
        reference = FoldInPredictor(loop_result).spec_for_training_user(0)
        assert spec == reference

    def test_corrupted_world_hash_rejected(self, loop_result, tmp_path):
        path = tmp_path / "w.mlp.npz"
        save_result(loop_result, path)
        with np.load(path) as data:
            payload = {name: data[name] for name in data.files}
        meta = json.loads(str(payload["meta"][()]))
        meta["world_hash"] = "0" * 16
        payload["meta"] = np.array(json.dumps(meta))
        bad = tmp_path / "bad.mlp.npz"
        with open(bad, "wb") as fh:
            np.savez_compressed(fh, **payload)
        with pytest.raises(ArtifactError, match="content hash"):
            load_result(bad)

    def test_version1_artifact_without_world_still_loads(
        self, loop_result, tmp_path
    ):
        """Back-compat: pre-world artifacts load; the world is recompiled."""
        from repro.data import columnar

        path = tmp_path / "w.mlp.npz"
        save_result(loop_result, path)
        with np.load(path) as data:
            payload = {
                name: data[name]
                for name in data.files
                if not name.startswith("world_")
            }
        meta = json.loads(str(payload["meta"][()]))
        meta["format_version"] = 1
        del meta["world_hash"]
        payload["meta"] = np.array(json.dumps(meta))
        legacy = tmp_path / "legacy.mlp.npz"
        with open(legacy, "wb") as fh:
            np.savez_compressed(fh, **payload)
        loaded = load_result(legacy)
        before = columnar.compile_count()
        columnar.compile_world(loaded.dataset)  # no persisted world: compile
        assert columnar.compile_count() == before + 1

    def test_materialized_dataset_is_collectable(self):
        """to_dataset must not pin the world/dataset pair in the memo."""
        import gc
        import weakref

        from repro.data.generator import (
            SyntheticWorldConfig,
            generate_columnar_world,
        )

        world = generate_columnar_world(
            SyntheticWorldConfig(n_users=40, seed=2), shards=2
        )
        dataset = world.require_dataset()
        ref_world = weakref.ref(world)
        ref_dataset = weakref.ref(dataset)
        del world, dataset
        gc.collect()
        assert ref_dataset() is None
        assert ref_world() is None
