"""Unit tests for the spatial grid index."""

import numpy as np
import pytest

from repro.geo.coords import haversine_miles
from repro.geo.index import SpatialGridIndex


def brute_force_radius(lats, lons, lat, lon, radius):
    return sorted(
        i
        for i in range(len(lats))
        if haversine_miles(lat, lon, lats[i], lons[i]) <= radius
    )


@pytest.fixture(scope="module")
def random_points():
    rng = np.random.default_rng(42)
    lats = rng.uniform(25.0, 48.0, size=300)
    lons = rng.uniform(-124.0, -67.0, size=300)
    return lats, lons


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SpatialGridIndex([1.0], [1.0, 2.0])

    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError):
            SpatialGridIndex([1.0], [1.0], cell_miles=0.0)

    def test_len(self, random_points):
        lats, lons = random_points
        assert len(SpatialGridIndex(lats, lons)) == 300


class TestQueryRadius:
    @pytest.mark.parametrize("radius", [10.0, 50.0, 120.0, 400.0])
    def test_matches_brute_force(self, random_points, radius):
        lats, lons = random_points
        index = SpatialGridIndex(lats, lons, cell_miles=60.0)
        for lat, lon in [(34.0, -118.0), (41.0, -74.0), (30.0, -97.0)]:
            expected = brute_force_radius(lats, lons, lat, lon, radius)
            assert index.query_radius(lat, lon, radius) == expected

    def test_zero_radius_finds_exact_points(self):
        index = SpatialGridIndex([40.0, 41.0], [-75.0, -76.0])
        assert index.query_radius(40.0, -75.0, 0.0) == [0]

    def test_negative_radius_rejected(self):
        index = SpatialGridIndex([40.0], [-75.0])
        with pytest.raises(ValueError):
            index.query_radius(40.0, -75.0, -1.0)

    def test_empty_result(self, random_points):
        lats, lons = random_points
        index = SpatialGridIndex(lats, lons)
        # Middle of the Pacific: nothing within 100 miles.
        assert index.query_radius(30.0, -150.0, 100.0) == []


class TestNearest:
    def test_matches_brute_force(self, random_points):
        lats, lons = random_points
        index = SpatialGridIndex(lats, lons, cell_miles=60.0)
        for lat, lon in [(34.0, -118.0), (47.0, -122.0), (26.0, -80.0)]:
            distances = [
                haversine_miles(lat, lon, lats[i], lons[i])
                for i in range(len(lats))
            ]
            expected = int(np.argmin(distances))
            assert index.nearest(lat, lon) == expected

    def test_nearest_far_query_expands_search(self, random_points):
        lats, lons = random_points
        index = SpatialGridIndex(lats, lons)
        # Hawaii is thousands of miles from every indexed point.
        result = index.nearest(21.3, -157.8)
        assert 0 <= result < 300

    def test_single_point(self):
        index = SpatialGridIndex([40.0], [-75.0])
        assert index.nearest(0.0, 0.0) == 0
