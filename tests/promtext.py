"""A strict little parser for the Prometheus text exposition format.

Used by the observability tests to assert that ``GET /metrics`` output
is *well-formed* at the line-grammar level -- not just that some
substring appears: every line must be a comment (``# HELP`` /
``# TYPE``) or a valid sample (``name{labels} value``), label values
must be properly quoted/escaped, no sample may appear twice with the
same name + label set, and every sample must belong to a ``# TYPE``-d
family.

This is deliberately independent of :mod:`repro.obs.metrics` -- it
re-derives validity from the wire format, so an encoder bug cannot hide
behind its own definitions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


@dataclass
class Sample:
    """One parsed sample line."""

    name: str
    labels: dict[str, str]
    value: float

    @property
    def key(self) -> tuple:
        return (self.name, tuple(sorted(self.labels.items())))


@dataclass
class Family:
    """One metric family: its declared type, help, and samples."""

    name: str
    kind: str | None = None
    help: str | None = None
    samples: list[Sample] = field(default_factory=list)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)  # raises ValueError on garbage -- wanted


def _parse_labels(raw: str | None) -> dict[str, str]:
    if raw is None or raw == "":
        return {}
    labels: dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_RE.match(raw, position)
        if match is None:
            raise ValueError(f"malformed label pair at {raw[position:]!r}")
        name = match.group("name")
        if name in labels:
            raise ValueError(f"duplicate label name {name!r} in {raw!r}")
        value = match.group("value")
        value = (
            value.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        labels[name] = value
        position = match.end()
        if position < len(raw):
            if raw[position] != ",":
                raise ValueError(f"expected ',' at {raw[position:]!r}")
            position += 1
    return labels


def parse(text: str) -> dict[str, Family]:
    """Parse exposition text; raises ``ValueError`` on any grammar error.

    Checks, beyond per-line syntax: families are contiguous (HELP/TYPE
    precede their samples), every sample belongs to a typed family
    (histogram samples may use the ``_bucket``/``_sum``/``_count``
    suffixes of their family name), and no (name, labels) sample key
    repeats.
    """
    families: dict[str, Family] = {}
    seen_keys: set[tuple] = set()
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    for line_no, line in enumerate(text.splitlines(), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                if parts[1:2] and parts[1] in ("HELP", "TYPE"):
                    raise ValueError(f"line {line_no}: truncated {parts[1]}")
                continue  # free-form comment: legal, ignored
            _, keyword, name, rest = parts
            if not _NAME_RE.fullmatch(name):
                raise ValueError(f"line {line_no}: bad metric name {name!r}")
            family = families.setdefault(name, Family(name))
            if keyword == "HELP":
                if family.help is not None:
                    raise ValueError(f"line {line_no}: second HELP for {name}")
                family.help = rest
            else:
                if family.kind is not None:
                    raise ValueError(f"line {line_no}: second TYPE for {name}")
                if rest not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {line_no}: bad type {rest!r}")
                if family.samples:
                    raise ValueError(
                        f"line {line_no}: TYPE for {name} after its samples"
                    )
                family.kind = rest
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: unparseable sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family = _resolve_family(families, name)
        if family is None:
            raise ValueError(
                f"line {line_no}: sample {name!r} has no TYPE declaration"
            )
        sample = Sample(name=name, labels=labels, value=value)
        if sample.key in seen_keys:
            raise ValueError(f"line {line_no}: duplicate sample {sample.key}")
        seen_keys.add(sample.key)
        family.samples.append(sample)
    return families


def _resolve_family(
    families: dict[str, Family], sample_name: str
) -> Family | None:
    """The declared family a sample belongs to, honouring suffixes."""
    family = families.get(sample_name)
    if family is not None and family.kind is not None:
        return family
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = families.get(sample_name[: -len(suffix)])
            if base is not None and base.kind == "histogram":
                return base
    return None


def assert_histogram_consistent(family: Family) -> None:
    """Bucket counts must be cumulative and agree with ``_count``."""
    by_series: dict[tuple, list[Sample]] = {}
    counts: dict[tuple, float] = {}
    for sample in family.samples:
        plain = tuple(
            sorted(
                (k, v) for k, v in sample.labels.items() if k != "le"
            )
        )
        if sample.name.endswith("_bucket"):
            by_series.setdefault(plain, []).append(sample)
        elif sample.name.endswith("_count"):
            counts[plain] = sample.value
    for plain, buckets in by_series.items():
        previous = 0.0
        inf_value = None
        for sample in buckets:
            assert sample.value >= previous, (
                f"{family.name}{dict(plain)}: bucket counts not cumulative"
            )
            previous = sample.value
            if sample.labels.get("le") == "+Inf":
                inf_value = sample.value
        assert inf_value is not None, (
            f"{family.name}{dict(plain)}: no +Inf bucket"
        )
        assert inf_value == counts.get(plain), (
            f"{family.name}{dict(plain)}: +Inf bucket != _count"
        )
