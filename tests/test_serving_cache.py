"""LRU cache tests: bounded size, recency, accounting, thread safety."""

import threading

import pytest

from repro.serving.cache import LRUCache


class TestBasics:
    def test_get_put(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_len_and_contains(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        assert "a" in cache
        assert "z" not in cache

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(max_size=0)

    def test_clear_keeps_counters(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_reset_stats_zeroes_counters_keeps_entries(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        cache.reset_stats()
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["size"] == 1
        assert cache.get("a") == 1

    def test_clear_then_reset_gives_fresh_stats(self):
        """The artifact-reload flow: clear + reset_stats together."""
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("miss")
        cache.clear()
        cache.reset_stats()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "invalidations": 0,
            "size": 0, "max_size": 4,
        }


class TestBulkOperations:
    def test_get_many_counts_hits_and_misses(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.put("b", 2)
        found = cache.get_many(["a", "b", "zzz"])
        assert found == {"a": 1, "b": 2}
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_get_many_refreshes_recency(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_many(["a"])
        cache.put("c", 3)  # "b" is now the oldest
        assert "a" in cache
        assert "b" not in cache

    def test_put_many_inserts_and_evicts(self):
        cache = LRUCache(max_size=2)
        cache.put_many([("a", 1), ("b", 2), ("c", 3)])
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3


class TestEviction:
    def test_oldest_entry_evicted(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" is now most recent; "b" should evict next
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache


class TestStats:
    def test_hit_miss_accounting(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["max_size"] == 4


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        """Hammer one small cache from many threads; no corruption."""
        cache = LRUCache(max_size=16)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(300):
                    key = (base + i) % 23
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16


class TestTags:
    """Tagged entries + selective invalidation (the streaming-ingest hook)."""

    def test_invalidate_tags_drops_exactly_tagged(self):
        cache = LRUCache(max_size=8)
        cache.put("a", 1, tags=(7, 9))
        cache.put("b", 2, tags=(9,))
        cache.put("c", 3)
        assert cache.invalidate_tags([7]) == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.invalidate_tags([9]) == 1
        assert cache.get("b") is None
        assert cache.stats()["invalidations"] == 2

    def test_invalidate_unknown_tag_is_noop(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1, tags=(1,))
        assert cache.invalidate_tags([99]) == 0
        assert cache.get("a") == 1

    def test_eviction_cleans_tag_index(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1, tags=(5,))
        cache.put("b", 2, tags=(5,))
        cache.put("c", 3, tags=(5,))  # evicts "a"
        assert cache.invalidate_tags([5]) == 2  # only b and c remain
        assert len(cache) == 0
        assert cache._tag_index == {}
        assert cache._key_tags == {}

    def test_re_put_replaces_tags(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1, tags=(1,))
        cache.put("a", 2, tags=(2,))
        assert cache.invalidate_tags([1]) == 0
        assert cache.invalidate_tags([2]) == 1

    def test_put_many_accepts_tagged_triples(self):
        cache = LRUCache(max_size=8)
        cache.put_many([("a", 1), ("b", 2, (4,)), ("c", 3, (4, 5))])
        assert cache.get("a") == 1
        assert cache.invalidate_tags([4]) == 2
        assert cache.get("a") == 1

    def test_clear_drops_tag_state(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1, tags=(1,))
        cache.clear()
        assert cache._tag_index == {}
        assert cache.invalidate_tags([1]) == 0
