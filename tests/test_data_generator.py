"""Unit tests for the synthetic world generator."""

import numpy as np
import pytest

from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.data.stats import compute_stats


class TestConfigValidation:
    def test_rejects_tiny_world(self):
        with pytest.raises(ValueError):
            SyntheticWorldConfig(n_users=1)

    def test_rejects_bad_labeled_fraction(self):
        with pytest.raises(ValueError):
            SyntheticWorldConfig(labeled_fraction=1.5)

    def test_rejects_unnormalized_location_probs(self):
        with pytest.raises(ValueError):
            SyntheticWorldConfig(n_location_probs=(0.5, 0.5, 0.5))

    def test_rejects_positive_alpha(self):
        with pytest.raises(ValueError):
            SyntheticWorldConfig(alpha=0.5)

    def test_rejects_noise_probability_one(self):
        with pytest.raises(ValueError):
            SyntheticWorldConfig(noise_following=1.0)


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = SyntheticWorldConfig(n_users=80, seed=21)
        a = generate_world(cfg)
        b = generate_world(cfg)
        assert [u.true_locations for u in a.users] == [
            u.true_locations for u in b.users
        ]
        assert a.following == b.following
        assert a.tweeting == b.tweeting

    def test_different_seeds_differ(self):
        a = generate_world(SyntheticWorldConfig(n_users=80, seed=1))
        b = generate_world(SyntheticWorldConfig(n_users=80, seed=2))
        assert a.following != b.following


class TestGroundTruthConsistency:
    def test_every_user_has_truth(self, small_world):
        assert small_world.has_ground_truth

    def test_home_is_argmax_of_profile(self, small_world):
        for u in small_world.users:
            assert u.true_home == u.true_locations[0]
            weights = u.true_profile_weights
            assert weights[0] == max(weights)

    def test_profile_weights_normalized(self, small_world):
        for u in small_world.users:
            assert sum(u.true_profile_weights) == pytest.approx(1.0)

    def test_locations_distinct_per_user(self, small_world):
        for u in small_world.users:
            assert len(set(u.true_locations)) == len(u.true_locations)

    def test_labeled_users_registered_at_true_home(self, small_world):
        for u in small_world.users:
            if u.is_labeled:
                assert u.registered_location == u.true_home

    def test_location_count_distribution(self):
        ds = generate_world(SyntheticWorldConfig(n_users=600, seed=3))
        counts = np.array([len(u.true_locations) for u in ds.users])
        assert set(counts) <= {1, 2, 3}
        # Defaults: 50% single, 38% double, 12% triple.
        assert 0.40 < np.mean(counts == 1) < 0.60
        assert np.mean(counts == 3) < 0.25


class TestEdgeGroundTruth:
    def test_noise_edges_have_no_assignments(self, small_world):
        for e in small_world.following:
            if e.is_noise:
                assert e.true_x is None and e.true_y is None
            else:
                assert e.true_x is not None and e.true_y is not None

    def test_location_edge_assignments_in_profiles(self, small_world):
        for e in small_world.following:
            if not e.is_noise:
                assert e.true_x in small_world.users[e.follower].true_locations
                assert e.true_y in small_world.users[e.friend].true_locations

    def test_no_duplicate_edges(self, small_world):
        pairs = [(e.follower, e.friend) for e in small_world.following]
        assert len(pairs) == len(set(pairs))

    def test_tweet_assignments_in_profiles(self, small_world):
        for t in small_world.tweeting:
            if not t.is_noise:
                assert t.true_z in small_world.users[t.user].true_locations
            else:
                assert t.true_z is None


class TestCorpusShape:
    """The generated world matches the paper's corpus statistics."""

    @pytest.fixture(scope="class")
    def stats(self):
        return compute_stats(generate_world(SyntheticWorldConfig(n_users=800, seed=5)))

    def test_mean_friends_near_config(self, stats):
        assert 8.0 < stats.mean_friends < 12.0

    def test_mean_venues_near_config(self, stats):
        assert 11.0 < stats.mean_venues < 17.0

    def test_labeled_fraction_near_config(self, stats):
        assert 0.74 < stats.labeled_fraction < 0.86

    def test_noise_fractions_near_config(self, stats):
        # Nominal 0.12, but retries after duplicate/self edges re-roll
        # the mixture choice, inflating the realized rate slightly.
        assert 0.08 < stats.noise_following_fraction < 0.22
        assert 0.15 < stats.noise_tweeting_fraction < 0.26

    def test_multi_location_fraction(self, stats):
        assert 0.40 < stats.multi_location_fraction < 0.60

    def test_candidacy_coverage_is_high(self, stats):
        # The paper reports ~92%; the synthetic world must be in the
        # same regime for candidacy vectors to make sense.
        assert stats.candidacy_coverage > 0.65


class TestDistanceDecay:
    def test_location_edges_are_mostly_local(self, small_world):
        """Non-noise edges should be far more local than noise edges."""
        gaz = small_world.gazetteer
        loc_d, noise_d = [], []
        for e in small_world.following:
            follower_home = small_world.users[e.follower].true_home
            friend_home = small_world.users[e.friend].true_home
            d = gaz.distance(follower_home, friend_home)
            (noise_d if e.is_noise else loc_d).append(d)
        assert np.median(loc_d) < np.median(noise_d)


class TestTweetRendering:
    def test_tweets_rendered_when_enabled(self):
        ds = generate_world(
            SyntheticWorldConfig(n_users=30, seed=2, render_tweets=True)
        )
        assert len(ds.tweets) == ds.n_tweeting
        assert all(t.text for t in ds.tweets)

    def test_rendered_tweets_mention_their_venue(self):
        from repro.text.venues import VenueExtractor

        ds = generate_world(
            SyntheticWorldConfig(n_users=30, seed=2, render_tweets=True)
        )
        extractor = VenueExtractor(ds.gazetteer)
        hits = 0
        for tweet, edge in zip(ds.tweets[:50], ds.tweeting[:50]):
            mentioned = extractor.extract_venue_ids(tweet.text)
            if edge.venue_id in mentioned:
                hits += 1
        # Template filler can collide with venue tokens, but the named
        # venue must be recovered in the overwhelming majority.
        assert hits >= 45

    def test_no_tweets_by_default(self, small_world):
        assert small_world.tweets == ()


class TestCustomGazetteer:
    def test_generate_on_synthetic_gazetteer(self):
        from repro.geo.us_cities import synthetic_gazetteer

        gaz = synthetic_gazetteer(40, seed=0)
        ds = generate_world(SyntheticWorldConfig(n_users=50, seed=1), gazetteer=gaz)
        assert ds.n_users == 50
        assert len(ds.gazetteer) == 40


class TestShardedGenerator:
    """The array-native sharded path: determinism, shape, compile-once."""

    @pytest.fixture(scope="class")
    def sharded(self):
        return generate_world(
            SyntheticWorldConfig(n_users=400, seed=21), shards=4
        )

    def test_deterministic_given_seed_and_shards(self, sharded):
        again = generate_world(
            SyntheticWorldConfig(n_users=400, seed=21), shards=4
        )
        assert [u for u in again.users] == [u for u in sharded.users]
        assert again.following == sharded.following
        assert again.tweeting == sharded.tweeting

    def test_shard_count_changes_stream(self, sharded):
        other = generate_world(
            SyntheticWorldConfig(n_users=400, seed=21), shards=2
        )
        assert other.following != sharded.following

    def test_ground_truth_preserved(self, sharded):
        assert sharded.has_ground_truth
        for user in sharded.users:
            assert user.true_home == user.true_locations[0]
            weights = np.array(user.true_profile_weights)
            assert weights[0] == weights.max()
            assert abs(weights.sum() - 1.0) < 1e-9
            if user.is_labeled:
                assert user.registered_location == user.true_home

    def test_noise_edges_carry_no_assignments(self, sharded):
        for edge in sharded.following:
            if edge.is_noise:
                assert edge.true_x is None and edge.true_y is None
            else:
                assert edge.true_x in sharded.users[edge.follower].true_locations

    def test_no_self_follows_or_duplicates(self, sharded):
        pairs = [(e.follower, e.friend) for e in sharded.following]
        assert len(pairs) == len(set(pairs))
        assert all(f != g for f, g in pairs)

    def test_statistical_shape(self):
        ds = generate_world(
            SyntheticWorldConfig(n_users=1500, seed=3), shards=8
        )
        stats = compute_stats(ds)
        # Dropped duplicates shave the configured mean; the shape holds.
        assert 6.0 <= stats.mean_friends <= 11.0
        assert 11.0 <= stats.mean_venues <= 17.0
        assert 0.7 <= stats.labeled_fraction <= 0.9
        assert 0.08 <= stats.noise_following_fraction <= 0.18
        assert 0.15 <= stats.noise_tweeting_fraction <= 0.26
        assert stats.candidacy_coverage >= 0.85

    def test_compiled_world_registered(self, sharded):
        from repro.data import columnar

        before = columnar.compile_count()
        world = columnar.compile_world(sharded)
        assert columnar.compile_count() == before  # pre-registered
        assert world.n_users == sharded.n_users

    def test_columnar_only_path_matches_dataset_path(self):
        from repro.data.columnar import compile_world
        from repro.data.generator import generate_columnar_world

        cfg = SyntheticWorldConfig(n_users=150, seed=9)
        via_dataset = compile_world(generate_world(cfg, shards=3))
        bare = generate_columnar_world(cfg, shards=3)
        assert bare.content_hash == via_dataset.content_hash

    def test_render_tweets(self):
        ds = generate_world(
            SyntheticWorldConfig(n_users=60, seed=4, render_tweets=True),
            shards=2,
        )
        assert len(ds.tweets) == ds.n_tweeting
