"""Tests for hyper-parameter sensitivity sweeps."""

import pytest

from repro.core.params import MLPParams
from repro.evaluation.splits import single_holdout_split
from repro.experiments.sensitivity import (
    DEFAULT_GRIDS,
    SensitivityPoint,
    accuracy_spread,
    best_point,
    render_sweep,
    sweep_parameter,
)


@pytest.fixture(scope="module")
def split(small_world):
    return single_holdout_split(small_world, 0.25, seed=2)


@pytest.fixture(scope="module")
def fast_params():
    return MLPParams(
        n_iterations=6, burn_in=2, seed=0, track_edge_assignments=False
    )


class TestSweep:
    def test_one_point_per_grid_value(self, small_world, split, fast_params):
        points = sweep_parameter(
            small_world, split, fast_params, "tau", grid=(0.05, 0.5)
        )
        assert [p.value for p in points] == [0.05, 0.5]
        assert all(0.0 <= p.accuracy <= 1.0 for p in points)

    def test_default_grid_used(self, small_world, split, fast_params):
        points = sweep_parameter(
            small_world, split, fast_params, "boost", grid=(10.0,)
        )
        assert points[0].parameter == "boost"

    def test_unknown_parameter_rejected(self, small_world, split, fast_params):
        with pytest.raises(ValueError):
            sweep_parameter(small_world, split, fast_params, "nonsense",
                            grid=(1.0,))

    def test_unknown_default_grid_rejected(self, small_world, split, fast_params):
        with pytest.raises(ValueError):
            sweep_parameter(small_world, split, fast_params, "seed")

    def test_boost_matters(self, small_world, split, fast_params):
        """Supervision boost is the most sensitive knob: a tiny boost
        must underperform a strong one."""
        points = sweep_parameter(
            small_world, split, fast_params, "boost", grid=(0.5, 50.0)
        )
        assert points[1].accuracy >= points[0].accuracy


class TestHelpers:
    def _points(self):
        return [
            SensitivityPoint("tau", 0.01, 0.4),
            SensitivityPoint("tau", 0.1, 0.6),
            SensitivityPoint("tau", 1.0, 0.6),
        ]

    def test_best_point_prefers_smaller_on_tie(self):
        assert best_point(self._points()).value == 0.1

    def test_accuracy_spread(self):
        assert accuracy_spread(self._points()) == pytest.approx(0.2)

    def test_render(self):
        text = render_sweep(self._points())
        assert "Sensitivity: tau" in text
        assert "spread: 20.0%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])
        with pytest.raises(ValueError):
            accuracy_spread([])
        with pytest.raises(ValueError):
            render_sweep([])

    def test_default_grids_cover_paper_parameters(self):
        assert {"tau", "boost", "rho_f", "rho_t", "delta"} <= set(DEFAULT_GRIDS)
