"""CLI round-trips for durable ingest: ingest/replay/compact.

Drives the real ``repro`` entrypoints end-to-end against one small
fitted artifact: journaled ingest across multiple invocations (the
generation chain must continue), a simulated crash (torn final
record), ``replay`` with and without ``--verify``, ``compact``, more
ingest on top of the snapshot, and the error exits (missing journal,
bad delta) -- including ``--score-output`` after recovery.
"""

from __future__ import annotations

import json

import pytest
from faults import record_spans, truncate_at

from repro.cli import main


@pytest.fixture(scope="module")
def artifact_info(tmp_path_factory):
    """A 100-user artifact fit through the real CLI."""
    root = tmp_path_factory.mktemp("cli-journal")
    dataset = root / "world.json"
    artifact = root / "model.mlp.npz"
    assert main(
        ["generate", str(dataset), "--users", "100", "--seed", "9"]
    ) == 0
    assert main(
        [
            "fit", str(dataset),
            "--iterations", "5", "--burn-in", "2",
            "--save-artifact", str(artifact),
        ]
    ) == 0
    return artifact, 100


def write_deltas(path, n_users, n):
    """``n`` simple valid deltas (one arrival + one edge + one tweet).

    Returns the world size after applying them, so successive files
    can keep indexing the grown world correctly.
    """
    with open(path, "w") as fh:
        for i in range(n):
            payload = {
                "new_users": [{"observed_location": None}],
                "edges": [[(n_users + i) % 7, n_users + i]],
                "tweets": [[n_users + i, i % 3]],
                "labels": {},
            }
            fh.write(json.dumps(payload) + "\n")
    return n_users + n


def generations(captured_out: str) -> list[int]:
    return [
        json.loads(line)["generation"]
        for line in captured_out.strip().splitlines()
        if line.startswith("{")
    ]


class TestJournaledRoundTrip:
    def test_ingest_kill_replay_compact_replay(
        self, artifact_info, tmp_path, capsys
    ):
        artifact, n_users = artifact_info
        journal = tmp_path / "journal"

        # -- ingest 3 deltas, journaled ---------------------------------
        d1 = tmp_path / "d1.jsonl"
        n_users = write_deltas(d1, n_users, 3)
        assert main(
            ["ingest", str(artifact), "--input", str(d1),
             "--journal", str(journal)]
        ) == 0
        captured = capsys.readouterr()
        assert generations(captured.out) == [1, 2, 3]
        assert "recovered" in captured.err

        # -- a second invocation continues the chain, and re-scores
        #    only *its own* deltas (window starts at the recovered
        #    generation), writing the score file after recovery --------
        d2 = tmp_path / "d2.jsonl"
        score = tmp_path / "rescored.jsonl"
        n_users = write_deltas(d2, n_users, 3)
        assert main(
            ["ingest", str(artifact), "--input", str(d2),
             "--journal", str(journal), "--score-output", str(score)]
        ) == 0
        captured = capsys.readouterr()
        assert generations(captured.out) == [4, 5, 6]
        scored = [
            json.loads(line) for line in score.read_text().splitlines()
        ]
        assert scored, "recovery re-score produced no predictions"
        assert all("user_id" in entry and "home" in entry for entry in scored)

        # -- kill: tear the last record in half -------------------------
        start, end = record_spans(journal)[-1]
        truncate_at(journal, start + (end - start) // 2)

        # -- replay recovers the 5-delta prefix and repairs the file ----
        assert main(
            ["replay", str(artifact), "--journal", str(journal)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generation"] == 5
        assert report["repaired_bytes"] > 0
        recovered_hash = report["world_hash"]

        # -- --verify golden-checks against a from-scratch recompile ----
        assert main(
            ["replay", str(artifact), "--journal", str(journal), "--verify"]
        ) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["world_hash"] == recovered_hash
        assert "verify ok" in captured.err

        # -- compact: snapshot + truncate -------------------------------
        assert main(
            ["compact", str(artifact), "--journal", str(journal)]
        ) == 0
        compacted = json.loads(capsys.readouterr().out)
        assert compacted["generation"] == 5
        assert compacted["world_hash"] == recovered_hash
        assert compacted["records_compacted"] == 5

        # -- replay again: recovery now rides the snapshot --------------
        assert main(
            ["replay", str(artifact), "--journal", str(journal)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generation"] == 5
        assert report["world_hash"] == recovered_hash
        assert report["snapshot_generation"] == 5
        assert report["replayed"] == 0

        # -- ingest continues on top of the snapshot --------------------
        d3 = tmp_path / "d3.jsonl"
        write_deltas(d3, n_users - 1, 2)  # world recovered to 5 arrivals
        assert main(
            ["ingest", str(artifact), "--input", str(d3),
             "--journal", str(journal)]
        ) == 0
        assert generations(capsys.readouterr().out) == [6, 7]

        # -- and the whole history still verifies bit-for-bit -----------
        assert main(
            ["replay", str(artifact), "--journal", str(journal), "--verify"]
        ) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["generation"] == 7
        assert "verify ok" in captured.err


class TestJournalCLIErrors:
    def test_replay_missing_journal_is_exit_2(
        self, artifact_info, tmp_path, capsys
    ):
        artifact, _ = artifact_info
        rc = main(
            ["replay", str(artifact), "--journal", str(tmp_path / "nope")]
        )
        assert rc == 2
        assert "replay failed" in capsys.readouterr().err

    def test_compact_missing_journal_is_exit_2(
        self, artifact_info, tmp_path, capsys
    ):
        artifact, _ = artifact_info
        rc = main(
            ["compact", str(artifact), "--journal", str(tmp_path / "nope")]
        )
        assert rc == 2
        assert "compact failed" in capsys.readouterr().err

    def test_bad_delta_is_exit_2_and_never_journaled(
        self, artifact_info, tmp_path, capsys
    ):
        artifact, _ = artifact_info
        journal = tmp_path / "journal"
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"edges": [[1, 1]]}) + "\n")  # self-follow
        rc = main(
            ["ingest", str(artifact), "--input", str(bad),
             "--journal", str(journal)]
        )
        assert rc == 2
        assert "bad delta" in capsys.readouterr().err
        # The invalid delta was rejected *before* the write-ahead
        # append: replay sees an empty, clean journal.
        assert main(
            ["replay", str(artifact), "--journal", str(journal)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generation"] == 0
        assert report["records"] == 0

    def test_unreadable_input_is_exit_2(
        self, artifact_info, tmp_path, capsys
    ):
        artifact, _ = artifact_info
        rc = main(
            ["ingest", str(artifact),
             "--input", str(tmp_path / "missing.jsonl"),
             "--journal", str(tmp_path / "journal")]
        )
        assert rc == 2
        assert "cannot read --input" in capsys.readouterr().err
