"""Handcrafted-example tests for the evaluation metrics (Sec. 5)."""

import pytest

from repro.evaluation.metrics import (
    aad_curve,
    accuracy_at,
    dp_at_k,
    dp_of_user,
    dr_at_k,
    dr_of_user,
    explanation_accuracy,
)
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def gaz():
    """Four cities: LA, Santa Monica (next to LA), Austin, NYC."""
    return Gazetteer(
        [
            Location(0, "Los Angeles", "CA", 34.0522, -118.2437, 100),
            Location(1, "Santa Monica", "CA", 34.0195, -118.4912, 50),
            Location(2, "Austin", "TX", 30.2672, -97.7431, 80),
            Location(3, "New York", "NY", 40.7128, -74.0060, 200),
        ]
    )


class TestAccuracyAt:
    def test_exact_match(self, gaz):
        assert accuracy_at(gaz, [0, 2], [0, 2]) == 1.0

    def test_nearby_counts_within_threshold(self, gaz):
        # Santa Monica is ~15 miles from LA: correct at 100, wrong at 10.
        assert accuracy_at(gaz, [1], [0], miles=100) == 1.0
        assert accuracy_at(gaz, [1], [0], miles=10) == 0.0

    def test_mixed(self, gaz):
        assert accuracy_at(gaz, [0, 3], [0, 2]) == 0.5

    def test_empty(self, gaz):
        assert accuracy_at(gaz, [], []) == 0.0

    def test_rejects_mismatch(self, gaz):
        with pytest.raises(ValueError):
            accuracy_at(gaz, [0], [0, 1])


class TestAADCurve:
    def test_monotone_nondecreasing(self, gaz):
        curve = aad_curve(gaz, [1, 3, 2], [0, 0, 2], mile_grid=[0, 20, 100, 3000])
        accs = [a for _, a in curve]
        assert accs == sorted(accs)

    def test_zero_distance_point(self, gaz):
        curve = aad_curve(gaz, [0], [0], mile_grid=[0])
        assert curve == [(0.0, 1.0)]

    def test_grid_preserved(self, gaz):
        curve = aad_curve(gaz, [0], [0], mile_grid=[5, 10])
        assert [m for m, _ in curve] == [5.0, 10.0]


class TestDPDR:
    def test_dp_counts_close_predictions(self, gaz):
        # Predictions LA + NYC; truth LA + Austin: only LA is close.
        assert dp_of_user(gaz, [0, 3], [0, 2]) == 0.5

    def test_dp_nearby_city_counts(self, gaz):
        # Santa Monica is close enough to the true LA.
        assert dp_of_user(gaz, [1], [0]) == 1.0

    def test_dr_counts_covered_truths(self, gaz):
        # Truth LA + Austin; predictions cover only LA.
        assert dr_of_user(gaz, [1], [0, 2]) == 0.5

    def test_dp_empty_prediction(self, gaz):
        assert dp_of_user(gaz, [], [0]) == 0.0

    def test_dr_empty_truth(self, gaz):
        assert dr_of_user(gaz, [0], []) == 0.0

    def test_dp_at_k_truncates(self, gaz):
        # Full ranking [3, 0]: at K=1 only NYC counts (wrong); at K=2
        # the LA prediction enters.
        rankings = [[3, 0]]
        truths = [[0]]
        assert dp_at_k(gaz, rankings, truths, k=1) == 0.0
        assert dp_at_k(gaz, rankings, truths, k=2) == 0.5

    def test_dr_at_k_improves_with_rank(self, gaz):
        rankings = [[0, 2]]
        truths = [[0, 2]]
        assert dr_at_k(gaz, rankings, truths, k=1) == 0.5
        assert dr_at_k(gaz, rankings, truths, k=2) == 1.0

    def test_averaged_over_users(self, gaz):
        rankings = [[0], [3]]
        truths = [[0], [2]]
        assert dp_at_k(gaz, rankings, truths, k=1) == 0.5

    def test_rejects_mismatch(self, gaz):
        with pytest.raises(ValueError):
            dp_at_k(gaz, [[0]], [[0], [1]])

    def test_empty_cohort(self, gaz):
        assert dp_at_k(gaz, [], []) == 0.0
        assert dr_at_k(gaz, [], []) == 0.0


class TestExplanationAccuracy:
    def test_both_endpoints_must_match(self, gaz):
        truth = [(0, 2)]
        assert explanation_accuracy(gaz, [(0, 2)], truth) == 1.0
        assert explanation_accuracy(gaz, [(0, 3)], truth) == 0.0
        assert explanation_accuracy(gaz, [(3, 2)], truth) == 0.0

    def test_nearby_assignment_counts(self, gaz):
        # Santa Monica for LA passes at the default 100 miles.
        assert explanation_accuracy(gaz, [(1, 2)], [(0, 2)]) == 1.0
        assert explanation_accuracy(gaz, [(1, 2)], [(0, 2)], miles=5) == 0.0

    def test_fraction_over_edges(self, gaz):
        truth = [(0, 2), (3, 3)]
        predicted = [(0, 2), (0, 0)]
        assert explanation_accuracy(gaz, predicted, truth) == 0.5

    def test_rejects_mismatch(self, gaz):
        with pytest.raises(ValueError):
            explanation_accuracy(gaz, [(0, 0)], [])

    def test_empty(self, gaz):
        assert explanation_accuracy(gaz, [], []) == 0.0
