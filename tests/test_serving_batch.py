"""Batch fold-in engine tests: bit-identity, masking, dedupe, the lot.

The headline contract is **bit-identity**: for every spec, the
vectorized batch engine must produce *exactly* the floats the
sequential ``FoldInPredictor._solve`` produces -- same candidates, same
gamma, same phi, same theta, same iteration count, same convergence
flag -- regardless of batch composition, chunk boundaries, or which
other users converge first.
"""

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.batch import BatchFoldInEngine, score_population
from repro.serving.foldin import FoldInPredictor, UserSpec


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=120, seed=5))


@pytest.fixture(scope="module")
def result(world):
    params = MLPParams(n_iterations=16, burn_in=6, seed=0, engine="vectorized")
    return MLPModel(params).fit(world)


@pytest.fixture(scope="module")
def predictor(result):
    return FoldInPredictor(result, artifact_id="batch-test")


@pytest.fixture(scope="module")
def engine(predictor):
    return BatchFoldInEngine(predictor)


def assert_solutions_identical(sequential, batch):
    assert np.array_equal(sequential.candidates, batch.candidates)
    assert np.array_equal(sequential.gamma, batch.gamma)
    assert np.array_equal(sequential.phi, batch.phi)
    assert np.array_equal(sequential.theta, batch.theta)
    assert sequential.iterations == batch.iterations
    assert sequential.converged == batch.converged


def assert_batch_matches_sequential(predictor, engine, specs):
    solutions = engine.solve(specs)
    assert len(solutions) == len(specs)
    for spec, batch_solution in zip(specs, solutions):
        assert_solutions_identical(predictor._solve(spec), batch_solution)


class TestBitIdentity:
    def test_every_training_user(self, predictor, engine, world):
        """Golden: the whole training population, user by user."""
        specs = [
            predictor.spec_for_training_user(uid)
            for uid in range(world.n_users)
        ]
        assert_batch_matches_sequential(predictor, engine, specs)

    def test_chunk_boundaries_do_not_change_results(self, predictor, world):
        specs = [
            predictor.spec_for_training_user(uid)
            for uid in range(world.n_users)
        ]
        small_chunks = BatchFoldInEngine(predictor, chunk_size=7).solve(specs)
        one_chunk = BatchFoldInEngine(
            predictor, chunk_size=len(specs)
        ).solve(specs)
        for a, b in zip(small_chunks, one_chunk):
            assert_solutions_identical(a, b)

    def test_batch_composition_does_not_change_results(
        self, predictor, engine
    ):
        """A user solved alone equals the same user solved among many."""
        target = predictor.spec_for_training_user(11)
        alone = engine.solve([target])[0]
        crowd = [predictor.spec_for_training_user(u) for u in range(40)]
        among = engine.solve(crowd + [target])[-1]
        assert_solutions_identical(alone, among)

    def test_non_converged_users_match(self, result, world):
        """A tiny iteration budget exercises the ran-out-of-budget path."""
        short = FoldInPredictor(
            result, artifact_id="short", max_iterations=3
        )
        specs = [
            short.spec_for_training_user(uid) for uid in range(world.n_users)
        ]
        solutions = BatchFoldInEngine(short).solve(specs)
        assert any(not s.converged for s in solutions)
        for spec, batch_solution in zip(specs, solutions):
            assert_solutions_identical(short._solve(spec), batch_solution)

    @pytest.mark.parametrize(
        "ablation",
        [
            {"use_following": False},
            {"use_tweeting": False},
            {"use_candidacy": False},
        ],
    )
    def test_ablations_match(self, world, ablation):
        params = MLPParams(
            n_iterations=10, burn_in=4, seed=0, engine="vectorized", **ablation
        )
        result = MLPModel(params).fit(world)
        predictor = FoldInPredictor(result, artifact_id="ablate")
        engine = BatchFoldInEngine(predictor)
        specs = [
            predictor.spec_for_training_user(uid) for uid in range(0, 60)
        ]
        assert_batch_matches_sequential(predictor, engine, specs)


class TestEdgeCases:
    def test_empty_batch(self, predictor, engine):
        assert engine.solve([]) == []
        assert predictor.predict_batch([]) == []

    def test_spec_with_zero_signals(self, predictor, engine):
        """No evidence at all: the uniform-prior fallback, bit for bit."""
        spec = UserSpec()
        assert_batch_matches_sequential(predictor, engine, [spec])
        solution = engine.solve([spec])[0]
        assert solution.iterations == 0
        assert solution.converged
        assert solution.candidates.size == predictor.n_locations

    def test_spec_with_empty_candidate_set(self, predictor, engine, world):
        """Relationships but no candidacy evidence (unlabeled friends
        only): falls back to the full gazetteer with real iteration."""
        unlabeled = [
            u for u in range(world.n_users)
            if u not in world.observed_locations
        ]
        spec = UserSpec(friends=(unlabeled[0], unlabeled[1]))
        solution = engine.solve([spec])[0]
        assert solution.candidates.size == predictor.n_locations
        assert solution.iterations > 0
        assert_batch_matches_sequential(predictor, engine, [spec])

    def test_mixed_labeled_and_unseen_batch(self, predictor, engine, world):
        labeled = list(world.labeled_user_ids[:4])
        specs = [
            predictor.spec_for_training_user(labeled[0]),
            UserSpec(friends=tuple(labeled[:2]), venues=(0,)),
            UserSpec(),
            predictor.spec_for_training_user(labeled[3]),
            UserSpec(observed_location=5),
            UserSpec(venues=(1, 1, 2)),
        ]
        assert_batch_matches_sequential(predictor, engine, specs)

    def test_validation_matches_sequential_messages(self, engine):
        with pytest.raises(ValueError, match="neighbour user id 10000"):
            engine.solve([UserSpec(friends=(10_000,))])
        with pytest.raises(ValueError, match="venue id"):
            engine.solve([UserSpec(venues=(10_000_000,))])
        with pytest.raises(ValueError, match="observed location -5"):
            engine.solve([UserSpec(observed_location=-5)])

    def test_rejects_nonpositive_chunk_size(self, predictor):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchFoldInEngine(predictor, chunk_size=0)


class TestPredictBatchDelegation:
    def test_large_batch_goes_through_engine(self, result, world):
        """Past the crossover, predict_batch output equals sequential."""
        batching = FoldInPredictor(
            result, artifact_id="delegate", batch_threshold=4
        )
        sequential = FoldInPredictor(
            result, artifact_id="delegate", batch_threshold=10**9
        )
        specs = [
            batching.spec_for_training_user(uid) for uid in range(50)
        ]
        fast = batching.predict_batch(specs, use_cache=False)
        slow = sequential.predict_batch(specs, use_cache=False)
        for a, b in zip(fast, slow):
            assert a.profile == b.profile
            assert a.iterations == b.iterations
            assert a.converged == b.converged

    def test_duplicates_solved_once_without_cache(self, result, world):
        """A batch of k identical specs costs exactly one solve."""
        predictor = FoldInPredictor(result, artifact_id="dedupe")
        spec = predictor.spec_for_training_user(3)
        before = predictor.solve_count
        predictions = predictor.predict_batch([spec] * 7, use_cache=False)
        assert predictor.solve_count == before + 1
        assert len(predictions) == 7
        assert len(predictor.cache) == 0
        first = predictions[0]
        assert all(p.profile == first.profile for p in predictions)
        assert not any(p.from_cache for p in predictions)

    def test_duplicates_solved_once_through_engine(self, result):
        """Dedupe happens before the crossover count, so k copies of one
        spec never trip the batch engine -- and still one solve."""
        predictor = FoldInPredictor(
            result, artifact_id="dedupe-engine", batch_threshold=4
        )
        spec = predictor.spec_for_training_user(5)
        before = predictor.solve_count
        predictor.predict_batch([spec] * 40, use_cache=False)
        assert predictor.solve_count == before + 1

    def test_duplicates_with_cache_report_cache_hits(self, result):
        """With the cache on, later duplicates behave exactly like the
        old sequential loop: first solves, the rest are cache hits."""
        predictor = FoldInPredictor(result, artifact_id="dedupe-cache")
        spec = predictor.spec_for_training_user(7)
        first, second, third = predictor.predict_batch([spec] * 3)
        assert not first.from_cache
        assert second.from_cache and third.from_cache

    def test_mixed_cached_and_fresh(self, result):
        predictor = FoldInPredictor(result, artifact_id="mixed")
        warm = [predictor.spec_for_training_user(u) for u in range(3)]
        predictor.predict_batch(warm)
        cold = [predictor.spec_for_training_user(u) for u in range(3, 6)]
        predictions = predictor.predict_batch(warm + cold)
        assert [p.from_cache for p in predictions] == [True] * 3 + [False] * 3


class TestScorePopulation:
    def test_scores_exactly_the_unlabeled_users(self, world, result):
        predictions = score_population(world, result)
        unlabeled = {
            u for u in range(world.n_users)
            if u not in world.observed_locations
        }
        assert set(predictions) == unlabeled
        assert all(p.home is not None for p in predictions.values())

    def test_matches_per_user_prediction(self, world, result, predictor):
        predictions = score_population(world, result, predictor=predictor)
        some = sorted(predictions)[:5]
        for uid in some:
            expected = predictor.predict(
                predictor.spec_for_training_user(uid), use_cache=False
            )
            assert predictions[uid].profile == expected.profile

    def test_rejects_mismatched_world(self, result):
        other = generate_world(SyntheticWorldConfig(n_users=30, seed=8))
        with pytest.raises(ValueError, match="30 users"):
            score_population(other, result)

    def test_rejects_same_size_different_world(self, world, result):
        """Same user count, different edges: the specs would replay the
        training world's evidence, so this must error, not mis-score."""
        other = generate_world(
            SyntheticWorldConfig(n_users=world.n_users, seed=99)
        )
        with pytest.raises(ValueError, match="content does not match"):
            score_population(other, result)


class TestKernelRowCache:
    def test_cache_is_bounded(self, result):
        predictor = FoldInPredictor(result, artifact_id="bounded")
        predictor._kernel_cache_limit = 5
        engine = BatchFoldInEngine(predictor)
        specs = [predictor.spec_for_training_user(u) for u in range(40)]
        solutions = engine.solve(specs)
        assert len(predictor._kernel_rows) <= 5
        # Overflowing the cache must not change results.
        for spec, batch_solution in zip(specs[:10], solutions[:10]):
            assert_solutions_identical(predictor._solve(spec), batch_solution)
