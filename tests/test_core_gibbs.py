"""Tests for the Gibbs sampler: invariants, determinism, behaviour."""

import numpy as np
import pytest

from repro.core.gibbs import NO_ASSIGNMENT, GibbsSampler, _draw_index
from repro.core.params import MLPParams


@pytest.fixture(scope="module")
def sampler_after_sweeps(small_world):
    params = MLPParams(n_iterations=4, burn_in=1, seed=7)
    sampler = GibbsSampler(small_world, params)
    sampler.initialize()
    for _ in range(3):
        sampler.sweep()
    return sampler


def check_count_consistency(sampler):
    """phi must equal the histogram of current non-noise assignments."""
    expected = np.zeros_like(sampler.state.user_counts.phi)
    followers = sampler._followers
    friends = sampler._friends
    for s in range(len(followers)):
        if sampler.state.mu[s] == 0:
            expected[followers[s], sampler.state.x[s]] += 1
            expected[friends[s], sampler.state.y[s]] += 1
    for k in range(len(sampler._tw_users)):
        if sampler.state.nu[k] == 0:
            expected[sampler._tw_users[k], sampler.state.z[k]] += 1
    assert np.array_equal(expected, sampler.state.user_counts.phi)
    assert np.array_equal(
        expected.sum(axis=1), sampler.state.user_counts.totals
    )


class TestDrawIndex:
    def test_point_mass(self, rng):
        w = np.array([0.0, 2.5, 0.0])
        assert _draw_index(rng, w) == 1

    def test_degenerate_raises(self, rng):
        with pytest.raises(RuntimeError):
            _draw_index(rng, np.zeros(3))
        with pytest.raises(RuntimeError):
            _draw_index(rng, np.array([np.inf, 1.0]))


class TestInvariants:
    def test_counts_match_assignments_after_init(self, small_world):
        params = MLPParams(n_iterations=2, burn_in=0, seed=1)
        sampler = GibbsSampler(small_world, params)
        sampler.initialize()
        check_count_consistency(sampler)

    def test_counts_match_assignments_after_sweeps(self, sampler_after_sweeps):
        check_count_consistency(sampler_after_sweeps)

    def test_assignments_within_candidates(self, sampler_after_sweeps):
        sampler = sampler_after_sweeps
        priors = sampler.priors
        for s in range(len(sampler._followers)):
            if sampler.state.mu[s] == 0:
                i = sampler._followers[s]
                j = sampler._friends[s]
                assert sampler.state.x[s] in priors.candidates[i]
                assert sampler.state.y[s] in priors.candidates[j]
            else:
                assert sampler.state.x[s] == NO_ASSIGNMENT
                assert sampler.state.y[s] == NO_ASSIGNMENT

    def test_tweeting_assignments_within_candidates(self, sampler_after_sweeps):
        sampler = sampler_after_sweeps
        priors = sampler.priors
        for k in range(len(sampler._tw_users)):
            if sampler.state.nu[k] == 0:
                assert sampler.state.z[k] in priors.candidates[sampler._tw_users[k]]
            else:
                assert sampler.state.z[k] == NO_ASSIGNMENT

    def test_venue_counts_nonnegative(self, sampler_after_sweeps):
        counts = sampler_after_sweeps.tweeting_model.counts_copy()
        assert np.all(counts >= 0)

    def test_sweep_requires_initialize(self, small_world):
        sampler = GibbsSampler(small_world, MLPParams(n_iterations=2, burn_in=0))
        with pytest.raises(RuntimeError):
            sampler.sweep()


class TestDeterminism:
    def test_same_seed_same_chain(self, small_world):
        params = MLPParams(n_iterations=3, burn_in=1, seed=5)
        runs = []
        for _ in range(2):
            sampler = GibbsSampler(small_world, params)
            sampler.run()
            runs.append(
                (
                    sampler.state.x.copy(),
                    sampler.state.y.copy(),
                    sampler.state.z.copy(),
                    sampler.state.mu.copy(),
                )
            )
        for a, b in zip(runs[0], runs[1]):
            assert np.array_equal(a, b)

    def test_different_seed_differs(self, small_world):
        chains = []
        for seed in (1, 2):
            params = MLPParams(n_iterations=3, burn_in=1, seed=seed)
            sampler = GibbsSampler(small_world, params)
            sampler.run()
            chains.append(sampler.state.x.copy())
        assert not np.array_equal(chains[0], chains[1])


class TestAblations:
    def test_mlp_u_ignores_tweets(self, small_world):
        from repro.core.model import mlp_u_params

        params = mlp_u_params(MLPParams(n_iterations=2, burn_in=0, seed=1))
        sampler = GibbsSampler(small_world, params)
        assert len(sampler._tw_users) == 0
        assert len(sampler._followers) == small_world.n_following

    def test_mlp_c_ignores_following(self, small_world):
        from repro.core.model import mlp_c_params

        params = mlp_c_params(MLPParams(n_iterations=2, burn_in=0, seed=1))
        sampler = GibbsSampler(small_world, params)
        assert len(sampler._followers) == 0
        assert len(sampler._tw_users) == small_world.n_tweeting


class TestNoiseDetection:
    def test_noise_fraction_in_plausible_band(self, small_world):
        params = MLPParams(n_iterations=8, burn_in=4, seed=2)
        sampler = GibbsSampler(small_world, params)
        trace = sampler.run()
        last = trace.iterations[-1]
        # Generator noise is ~0.12 following / 0.20 tweeting; the model
        # must land in a broad band around those, not at 0 or 1.
        assert 0.02 < last.noise_following_fraction < 0.45
        assert 0.02 < last.noise_tweeting_fraction < 0.5

    def test_noise_edges_detected_better_than_chance(self, small_world):
        params = MLPParams(n_iterations=10, burn_in=5, seed=2)
        sampler = GibbsSampler(small_world, params)
        sampler.run()
        mu = sampler.state.mu
        truth = np.array([bool(e.is_noise) for e in small_world.following])
        flagged_rate_on_noise = mu[truth].mean()
        flagged_rate_on_clean = mu[~truth].mean()
        assert flagged_rate_on_noise > flagged_rate_on_clean

    def test_trace_metric_callback(self, small_world):
        params = MLPParams(n_iterations=3, burn_in=1, seed=2)
        sampler = GibbsSampler(small_world, params)
        seen = []

        def probe(s, it):
            seen.append(it)
            return float(it)

        trace = sampler.run(metric_callback=probe)
        assert seen == [0, 1, 2]
        assert trace.metrics() == [0.0, 1.0, 2.0]


class TestEstimates:
    def test_theta_normalized(self, sampler_after_sweeps):
        sampler = sampler_after_sweeps
        row = sampler.state.user_counts.row(0)
        theta = sampler.theta_for(0, row)
        assert theta.sum() == pytest.approx(1.0)
        assert np.all(theta >= 0)

    def test_current_home_estimates_valid(self, sampler_after_sweeps):
        homes = sampler_after_sweeps.current_home_estimates()
        n_loc = len(sampler_after_sweeps.dataset.gazetteer)
        assert homes.shape == (sampler_after_sweeps.dataset.n_users,)
        assert homes.min() >= 0 and homes.max() < n_loc

    def test_labeled_users_estimated_at_observed_location(
        self, sampler_after_sweeps
    ):
        """The gamma boost must anchor labeled users to their label."""
        sampler = sampler_after_sweeps
        homes = sampler.current_home_estimates()
        observed = sampler.dataset.observed_locations
        matches = sum(homes[u] == loc for u, loc in observed.items())
        assert matches / len(observed) > 0.9

    def test_set_following_law_swaps_model(self, small_world):
        from repro.mathx.powerlaw import PowerLaw

        sampler = GibbsSampler(
            small_world, MLPParams(n_iterations=2, burn_in=0, seed=1)
        )
        new_law = PowerLaw(alpha=-0.9, beta=0.02)
        sampler.set_following_law(new_law)
        assert sampler.following_model.law.alpha == -0.9
