"""Unit tests for the FL/FR/TL/TR component models."""

import numpy as np
import pytest

from repro.core.following import LocationFollowingModel, RandomFollowingModel
from repro.core.tweeting import CollapsedTweetingModel, RandomTweetingModel
from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def gaz():
    return Gazetteer(
        [
            Location(0, "Near", "CA", 34.0, -118.0, 10),
            Location(1, "Close", "CA", 34.1, -118.1, 10),
            Location(2, "Far", "NY", 40.7, -74.0, 10),
        ]
    )


class TestLocationFollowingModel:
    def test_probability_decays_with_distance(self, gaz):
        fl = LocationFollowingModel.from_gazetteer(gaz, -0.55, 0.0045, 1.0)
        assert fl.probability(0, 1) > fl.probability(0, 2)

    def test_same_location_uses_clamp(self, gaz):
        fl = LocationFollowingModel.from_gazetteer(gaz, -0.55, 0.0045, 1.0)
        assert fl.probability(0, 0) == pytest.approx(0.0045)

    def test_matches_eq1(self, gaz):
        fl = LocationFollowingModel.from_gazetteer(gaz, -0.55, 0.0045, 1.0)
        d = gaz.distance(0, 2)
        assert fl.probability(0, 2) == pytest.approx(0.0045 * d**-0.55)

    def test_kernel_drops_beta(self, gaz):
        fl = LocationFollowingModel.from_gazetteer(gaz, -0.55, 0.0045, 1.0)
        d = gaz.distance(0, 2)
        assert fl.kernel(0, 2) == pytest.approx(d**-0.55)

    def test_kernel_against_vectorizes(self, gaz):
        fl = LocationFollowingModel.from_gazetteer(gaz, -0.55, 0.0045, 1.0)
        cands = np.array([0, 1, 2])
        vec = fl.kernel_against(cands, 2)
        for i, c in enumerate(cands):
            assert vec[i] == pytest.approx(fl.kernel(int(c), 2))


class TestRandomFollowingModel:
    def test_edge_probability_is_density(self, gaz):
        ds = Dataset(
            gaz, [User(0), User(1), User(2)],
            [FollowingEdge(0, 1), FollowingEdge(1, 2)], [],
        )
        fr = RandomFollowingModel.from_dataset(ds)
        assert fr.probability() == pytest.approx(2 / 9)


class TestCollapsedTweetingModel:
    def test_smoothed_probability(self):
        tl = CollapsedTweetingModel(n_locations=2, n_venues=3, delta=0.1)
        tl.increment(0, 1)
        tl.increment(0, 1)
        # (2 + 0.1) / (2 + 0.3)
        assert tl.probability(0, 1) == pytest.approx(2.1 / 2.3)
        assert tl.probability(0, 0) == pytest.approx(0.1 / 2.3)

    def test_unseen_location_is_uniform(self):
        tl = CollapsedTweetingModel(2, 4, delta=0.5)
        assert tl.probability(1, 2) == pytest.approx(0.25)

    def test_decrement_restores(self):
        tl = CollapsedTweetingModel(1, 2, delta=0.1)
        before = tl.probability(0, 0)
        tl.increment(0, 0)
        tl.decrement(0, 0)
        assert tl.probability(0, 0) == pytest.approx(before)

    def test_negative_count_raises(self):
        tl = CollapsedTweetingModel(1, 2, delta=0.1)
        with pytest.raises(RuntimeError):
            tl.decrement(0, 0)

    def test_probability_over_matches_scalar(self):
        tl = CollapsedTweetingModel(3, 2, delta=0.2)
        tl.increment(1, 0)
        cands = np.array([0, 1, 2])
        vec = tl.probability_over(cands, 0)
        for i, l in enumerate(cands):
            assert vec[i] == pytest.approx(tl.probability(int(l), 0))

    def test_venue_distribution_normalized(self):
        tl = CollapsedTweetingModel(1, 5, delta=0.1)
        tl.increment(0, 3)
        dist = tl.venue_distribution(0)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[3] == dist.max()

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            CollapsedTweetingModel(1, 1, delta=0.0)


class TestRandomTweetingModel:
    def test_popularity_proportional_to_mentions(self, gaz):
        ds = Dataset(
            gaz, [User(0)], [],
            [TweetingEdge(0, 0), TweetingEdge(0, 0), TweetingEdge(0, 1)],
        )
        tr = RandomTweetingModel.from_dataset(ds)
        assert tr.probability(0) > tr.probability(1) > tr.probability(2) > 0

    def test_probabilities_normalized(self, gaz):
        ds = Dataset(gaz, [User(0)], [], [TweetingEdge(0, 0)])
        tr = RandomTweetingModel.from_dataset(ds)
        assert tr.venue_probabilities.sum() == pytest.approx(1.0)

    def test_no_tweets_falls_back_to_uniform(self, gaz):
        ds = Dataset(gaz, [User(0)], [], [])
        tr = RandomTweetingModel.from_dataset(ds)
        n = len(gaz.venue_vocabulary)
        assert tr.probability(0) == pytest.approx(1.0 / n)
