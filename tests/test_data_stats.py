"""Unit tests for dataset statistics."""

import numpy as np
import pytest

from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.data.stats import compute_stats, distance_error_summary
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def gaz():
    return Gazetteer(
        [
            Location(0, "A", "CA", 34.0, -118.0, 100),
            Location(1, "B", "TX", 30.0, -97.0, 200),
        ]
    )


class TestComputeStats:
    def test_counts(self, gaz):
        ds = Dataset(
            gaz,
            [
                User(0, registered_location=0, true_home=0, true_locations=(0,),
                     true_profile_weights=(1.0,)),
                User(1, true_home=1, true_locations=(1, 0),
                     true_profile_weights=(0.6, 0.4)),
            ],
            [FollowingEdge(0, 1, true_x=0, true_y=1, is_noise=False)],
            [TweetingEdge(0, 0, true_z=0, is_noise=False),
             TweetingEdge(1, 1, true_z=None, is_noise=True)],
        )
        stats = compute_stats(ds)
        assert stats.n_users == 2
        assert stats.n_following == 1
        assert stats.n_tweeting == 2
        assert stats.labeled_fraction == 0.5
        assert stats.mean_friends == 0.5
        assert stats.mean_venues == 1.0
        assert stats.noise_following_fraction == 0.0
        assert stats.noise_tweeting_fraction == 0.5
        assert stats.multi_location_fraction == 0.5

    def test_unknown_noise_flags_give_none(self, gaz):
        ds = Dataset(gaz, [User(0), User(1)], [FollowingEdge(0, 1)], [])
        stats = compute_stats(ds)
        assert stats.noise_following_fraction is None
        assert stats.noise_tweeting_fraction is None
        assert stats.multi_location_fraction is None

    def test_candidacy_coverage_via_neighbor(self, gaz):
        # User 1's home (loc 1) is registered by neighbour... no --
        # here user 1's home appears through user 0? user 0 registered 0.
        ds = Dataset(
            gaz,
            [
                User(0, registered_location=0, true_home=0, true_locations=(0,),
                     true_profile_weights=(1.0,)),
                User(1, true_home=0, true_locations=(0,),
                     true_profile_weights=(1.0,)),
            ],
            [FollowingEdge(1, 0)],
            [],
        )
        stats = compute_stats(ds)
        # User 0: own home not observable from empty relationships of
        # others... user 0's neighbour (1) is unlabeled -> uncovered.
        # User 1: neighbour 0 registered loc 0 == home -> covered.
        assert stats.candidacy_coverage == 0.5

    def test_candidacy_coverage_via_venue(self, gaz):
        ds = Dataset(
            gaz,
            [User(0, true_home=1, true_locations=(1,), true_profile_weights=(1.0,))],
            [],
            # Venue "b" (id follows sorted vocabulary) refers to loc 1.
            [TweetingEdge(0, list(gaz.venue_vocabulary).index("b"), None, None)],
        )
        assert compute_stats(ds).candidacy_coverage == 1.0

    def test_as_dict_keys(self, gaz):
        ds = Dataset(gaz, [User(0)], [], [])
        d = compute_stats(ds).as_dict()
        assert d["users"] == 1
        assert "candidacy_coverage" in d


class TestDegenerateDatasets:
    """compute_stats must stay well-defined on pathological worlds."""

    def test_empty_world(self, gaz):
        stats = compute_stats(Dataset(gaz, [], [], []))
        assert stats.n_users == 0
        assert stats.n_following == 0
        assert stats.n_tweeting == 0
        assert stats.labeled_fraction == 0.0
        assert stats.mean_friends == 0.0
        assert stats.mean_followers == 0.0
        assert stats.mean_venues == 0.0
        assert stats.noise_following_fraction is None
        assert stats.noise_tweeting_fraction is None
        # vacuously ground-truthed: fractions are defined and zero
        assert stats.multi_location_fraction == 0.0
        assert stats.candidacy_coverage == 0.0
        # and the dict rendering survives too
        assert stats.as_dict()["users"] == 0

    def test_users_with_no_edges(self, gaz):
        ds = Dataset(
            gaz,
            [
                User(0, registered_location=0, true_home=0,
                     true_locations=(0,), true_profile_weights=(1.0,)),
                User(1, true_home=1, true_locations=(1,),
                     true_profile_weights=(1.0,)),
            ],
            [],
            [],
        )
        stats = compute_stats(ds)
        assert stats.mean_friends == 0.0
        assert stats.mean_venues == 0.0
        assert stats.labeled_fraction == 0.5
        assert stats.noise_following_fraction is None
        # no relationships -> nobody's home is observable from them
        assert stats.candidacy_coverage == 0.0

    def test_single_venue_world(self):
        # One-city gazetteer: exactly one venue name, one referent.
        gaz = Gazetteer([Location(0, "Solo", "NV", 39.5, -116.0, 10)])
        ds = Dataset(
            gaz,
            [
                User(0, true_home=0, true_locations=(0,),
                     true_profile_weights=(1.0,)),
                User(1, registered_location=0, true_home=0,
                     true_locations=(0,), true_profile_weights=(1.0,)),
            ],
            [FollowingEdge(0, 1)],
            [TweetingEdge(0, 0), TweetingEdge(1, 0)],
        )
        stats = compute_stats(ds)
        assert stats.n_venues == 1
        assert stats.n_locations == 1
        assert stats.mean_venues == 1.0
        # user 0 covered twice over (labeled neighbour + venue referent),
        # user 1 covered by its own tweeted venue
        assert stats.candidacy_coverage == 1.0

    def test_empty_world_compiles(self, gaz):
        """The degenerate cases flow through the columnar substrate."""
        from repro.data.columnar import compile_world

        world = compile_world(Dataset(gaz, [], [], []))
        assert world.n_users == 0
        assert world.n_following == 0
        assert world.labeled_mask.size == 0


class TestDistanceErrorSummary:
    def test_empty(self):
        assert distance_error_summary(np.array([])) == {"count": 0}

    def test_quantiles(self):
        errors = np.arange(101, dtype=float)
        s = distance_error_summary(errors)
        assert s["count"] == 101
        assert s["median"] == 50.0
        assert s["p90"] == pytest.approx(90.0)
        assert s["max"] == 100.0
