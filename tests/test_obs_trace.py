"""Unit tests for tracing (repro.obs.trace) and the sampler hook.

Covers span nesting into a tree, the no-op fast path when no trace is
active, trace-buffer ring bounds and the slow-request log, thread
isolation of the span stack, and the opt-in sweep observer hook --
including the golden guarantee that installing the observer does not
perturb inference results bit-for-bit.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.gibbs_em import MLPParams, run_inference
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.obs import hooks as obs_hooks
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Trace,
    TraceBuffer,
    current_trace,
    span,
    trace_request,
)


class TestSpans:
    def test_noop_when_no_trace_active(self):
        assert current_trace() is None
        first = span("anything")
        second = span("something.else")
        # Shared singleton: no allocation on the disabled path.
        assert first is second
        with first:
            pass  # must be harmless

    def test_spans_nest_into_a_tree(self):
        with trace_request("GET /x") as trace:
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
            with span("sibling"):
                pass
        assert [record.name for record in trace.spans] == ["outer", "sibling"]
        outer = trace.spans[0]
        assert [record.name for record in outer.children] == [
            "inner.a",
            "inner.b",
        ]
        assert trace.duration >= outer.duration >= 0.0

    def test_trace_cleared_after_exit(self):
        with trace_request("GET /x"):
            assert current_trace() is not None
        assert current_trace() is None
        assert span("after") is span("after")  # back to the no-op

    def test_nested_trace_request_is_passthrough(self):
        buffer = TraceBuffer()
        with trace_request("outer", buffer) as outer:
            with trace_request("inner", buffer) as inner:
                assert inner is outer
        # Only the outer trace is deposited.
        assert buffer.stats()["captured"] == 1

    def test_trace_ids_are_unique_and_deterministic_format(self):
        ids = set()
        for _ in range(5):
            with trace_request("GET /x") as trace:
                ids.add(trace.trace_id)
        assert len(ids) == 5
        for trace_id in ids:
            pid_part, counter_part = trace_id.split("-")
            int(pid_part, 16)
            int(counter_part, 16)

    def test_meta_and_to_dict(self):
        with trace_request("GET /x", meta={"route": "/x"}) as trace:
            trace.meta["status"] = 200
            with span("work"):
                pass
        payload = trace.to_dict()
        assert payload["name"] == "GET /x"
        assert payload["meta"] == {"route": "/x", "status": 200}
        assert payload["spans"][0]["name"] == "work"
        assert payload["duration_ms"] >= 0.0

    def test_thread_isolation(self):
        """A trace on one thread must be invisible to spans on another."""
        seen_on_worker = []
        ready = threading.Event()
        done = threading.Event()

        def worker():
            ready.wait(5)
            seen_on_worker.append(current_trace())
            with span("worker.section"):
                pass
            done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        with trace_request("GET /main") as trace:
            ready.set()
            assert done.wait(5)
            with span("main.section"):
                pass
        thread.join()
        assert seen_on_worker == [None]
        assert [record.name for record in trace.spans] == ["main.section"]


class TestTraceBuffer:
    def _trace(self, duration: float) -> Trace:
        trace = Trace("GET /x")
        trace.duration = duration
        return trace

    def test_ring_is_bounded(self):
        buffer = TraceBuffer(capacity=4, slow_threshold=10.0)
        for _ in range(10):
            buffer.add(self._trace(0.001))
        stats = buffer.stats()
        assert stats["captured"] == 10
        assert stats["buffered"] == 4
        assert len(buffer.recent()) == 4

    def test_slow_log_threshold_and_bound(self):
        buffer = TraceBuffer(capacity=64, slow_threshold=0.25, slow_capacity=2)
        for duration in (0.1, 0.3, 0.26, 0.9, 0.2):
            buffer.add(self._trace(duration))
        stats = buffer.stats()
        assert stats["slow_seen"] == 3
        assert stats["slow_buffered"] == 2
        assert stats["slow_threshold_ms"] == 250.0
        slow = buffer.slow()
        assert [entry["duration_ms"] for entry in slow] == [260.0, 900.0]


class TestSweepObserver:
    def test_default_is_none_and_set_returns_previous(self):
        assert obs_hooks.sweep_observer() is None
        sentinel = lambda engine, iteration, seconds: None  # noqa: E731
        previous = obs_hooks.set_sweep_observer(sentinel)
        try:
            assert previous is None
            assert obs_hooks.sweep_observer() is sentinel
        finally:
            obs_hooks.set_sweep_observer(previous)
        assert obs_hooks.sweep_observer() is None

    def test_metrics_observer_records_per_engine(self):
        registry = MetricsRegistry()
        observer = obs_hooks.metrics_sweep_observer(registry)
        observer("vectorized", 0, 0.01)
        observer("vectorized", 1, 0.02)
        observer("reference", 0, 0.05)
        sweeps = registry.get("repro_sampler_sweeps_total")
        assert sweeps.labels(engine="vectorized").value == 2
        assert sweeps.labels(engine="reference").value == 1
        seconds = registry.get("repro_sampler_sweep_seconds")
        assert seconds.labels(engine="vectorized").count == 2

    def test_observer_does_not_perturb_inference(self, tiny_world):
        """Golden: results with the observer installed are bit-identical."""
        params = MLPParams(
            n_iterations=6, burn_in=2, seed=11, engine="vectorized"
        )
        baseline = run_inference(tiny_world, params)

        registry = MetricsRegistry()
        calls: list[tuple[str, int]] = []
        observer = obs_hooks.metrics_sweep_observer(registry)

        def recording(engine, iteration, seconds):
            calls.append((engine, iteration))
            observer(engine, iteration, seconds)

        previous = obs_hooks.set_sweep_observer(recording)
        try:
            observed = run_inference(tiny_world, params)
        finally:
            obs_hooks.set_sweep_observer(previous)

        assert calls, "observer was never invoked"
        assert all(engine == "vectorized" for engine, _ in calls)
        for attr in ("mu", "x", "y", "nu", "z"):
            np.testing.assert_array_equal(
                getattr(baseline.sampler.state, attr),
                getattr(observed.sampler.state, attr),
            )
        np.testing.assert_array_equal(
            baseline.sampler.state.user_counts.phi,
            observed.sampler.state.user_counts.phi,
        )
        assert (
            baseline.trace.changed_fractions()
            == observed.trace.changed_fractions()
        )

    def test_observer_sees_every_sweep(self):
        world = generate_world(SyntheticWorldConfig(n_users=40, seed=21))
        params = MLPParams(
            n_iterations=5, burn_in=2, seed=4, engine="vectorized"
        )
        calls: list[int] = []
        previous = obs_hooks.set_sweep_observer(
            lambda engine, iteration, seconds: calls.append(iteration)
        )
        try:
            run_inference(world, params)
        finally:
            obs_hooks.set_sweep_observer(previous)
        # Total sweep budget is exactly n_iterations (burn-in included).
        assert len(calls) == params.n_iterations
