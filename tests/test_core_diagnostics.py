"""Tests for model diagnostics (held-out likelihood, noise calibration)."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    _auc,
    following_log_likelihood,
    noise_detection_report,
    profile_concentration_report,
    tweeting_log_likelihood,
)
from repro.data.model import FollowingEdge, TweetingEdge


class TestAUC:
    def test_perfect_separation(self):
        assert _auc(np.array([0.9, 0.8]), np.array([0.1, 0.2])) == 1.0

    def test_no_separation(self):
        assert _auc(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.5

    def test_inverted(self):
        assert _auc(np.array([0.1]), np.array([0.9])) == 0.0

    def test_partial(self):
        auc = _auc(np.array([0.9, 0.3]), np.array([0.5, 0.1]))
        assert auc == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _auc(np.array([]), np.array([0.5]))


class TestFollowingLogLikelihood:
    def test_finite_on_real_edges(self, fitted_result, small_world):
        ll = following_log_likelihood(
            fitted_result, list(small_world.following[:50])
        )
        assert np.isfinite(ll)
        assert ll < 0.0

    def test_local_edges_likelier_than_random_far_pairs(
        self, fitted_result, small_world
    ):
        """Held-out local edges must out-score shuffled fake edges."""
        real = [e for e in small_world.following[:80] if not e.is_noise]
        rng = np.random.default_rng(0)
        fake = []
        for e in real:
            friend = int(rng.integers(small_world.n_users))
            if friend == e.follower:
                friend = (friend + 1) % small_world.n_users
            fake.append(FollowingEdge(e.follower, friend))
        ll_real = following_log_likelihood(fitted_result, real)
        ll_fake = following_log_likelihood(fitted_result, fake)
        assert ll_real > ll_fake

    def test_empty_raises(self, fitted_result):
        with pytest.raises(ValueError):
            following_log_likelihood(fitted_result, [])


class TestTweetingLogLikelihood:
    def test_finite_on_real_mentions(self, fitted_result, small_world):
        ll = tweeting_log_likelihood(
            fitted_result, list(small_world.tweeting[:50])
        )
        assert np.isfinite(ll)
        assert ll < 0.0

    def test_real_mentions_likelier_than_shuffled(
        self, fitted_result, small_world
    ):
        real = [t for t in small_world.tweeting[:80] if not t.is_noise]
        rng = np.random.default_rng(1)
        n_venues = len(small_world.gazetteer.venue_vocabulary)
        fake = [
            TweetingEdge(t.user, int(rng.integers(n_venues))) for t in real
        ]
        assert tweeting_log_likelihood(
            fitted_result, real
        ) > tweeting_log_likelihood(fitted_result, fake)

    def test_empty_raises(self, fitted_result):
        with pytest.raises(ValueError):
            tweeting_log_likelihood(fitted_result, [])


class TestNoiseDetectionReport:
    def test_better_than_chance(self, fitted_result):
        report = noise_detection_report(fitted_result)
        assert report.auc > 0.5
        assert (
            report.mean_noise_posterior_on_noise
            > report.mean_noise_posterior_on_clean
        )

    def test_counts_match_ground_truth(self, fitted_result, small_world):
        report = noise_detection_report(fitted_result)
        truth_noise = sum(bool(e.is_noise) for e in small_world.following)
        assert report.n_noise == truth_noise
        assert report.n_clean == small_world.n_following - truth_noise

    def test_requires_tracked_edges(self, small_world):
        from repro.core.model import MLPModel
        from repro.core.params import MLPParams

        params = MLPParams(
            n_iterations=3, burn_in=1, seed=0, track_edge_assignments=False
        )
        result = MLPModel(params).fit(small_world)
        with pytest.raises(ValueError):
            noise_detection_report(result)


class TestProfileConcentration:
    def test_multi_location_users_more_spread(self, fitted_result):
        report = profile_concentration_report(fitted_result)
        assert report.mean_entropy_multi > report.mean_entropy_single
        assert (
            report.mean_effective_locations_multi
            > report.mean_effective_locations_single
        )

    def test_effective_locations_at_least_one(self, fitted_result):
        report = profile_concentration_report(fitted_result)
        assert report.mean_effective_locations_single >= 1.0
