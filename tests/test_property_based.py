"""Property-based tests (hypothesis) on core data structures and math."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import haversine_miles
from repro.geo.gazetteer import normalize_place_name
from repro.mathx.buckets import bucket_following_pairs
from repro.mathx.distributions import (
    log_normalize,
    sample_categorical,
    top_k_indices,
)
from repro.mathx.powerlaw import PowerLaw, fit_power_law
from repro.text.tokenizer import tokenize

lat = st.floats(min_value=-89.9, max_value=89.9)
lon = st.floats(min_value=-179.9, max_value=179.9)


class TestHaversineProperties:
    @given(lat, lon)
    def test_identity(self, a, b):
        assert haversine_miles(a, b, a, b) == 0.0

    @given(lat, lon, lat, lon)
    def test_symmetry(self, a1, b1, a2, b2):
        d1 = haversine_miles(a1, b1, a2, b2)
        d2 = haversine_miles(a2, b2, a1, b1)
        assert d1 == pytest.approx(d2, abs=1e-9)

    @given(lat, lon, lat, lon)
    def test_non_negative_and_bounded(self, a1, b1, a2, b2):
        d = haversine_miles(a1, b1, a2, b2)
        assert 0.0 <= d <= math.pi * 3958.7613 + 1e-6

    @given(lat, lon, lat, lon, lat, lon)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a1, b1, a2, b2, a3, b3):
        d12 = haversine_miles(a1, b1, a2, b2)
        d23 = haversine_miles(a2, b2, a3, b3)
        d13 = haversine_miles(a1, b1, a3, b3)
        assert d13 <= d12 + d23 + 1e-6


class TestPowerLawProperties:
    @given(
        st.floats(min_value=-2.0, max_value=-0.1),
        st.floats(min_value=1e-5, max_value=1.0),
    )
    def test_fit_recovers_exact_parameters(self, alpha, beta):
        x = np.logspace(0.1, 3, 25)
        law = fit_power_law(x, PowerLaw(alpha, beta)(x))
        assert law.alpha == pytest.approx(alpha, abs=1e-6)
        assert law.beta == pytest.approx(beta, rel=1e-5)

    @given(
        st.floats(min_value=-2.0, max_value=-0.1),
        st.floats(min_value=1e-5, max_value=1.0),
        st.floats(min_value=0.0, max_value=5000.0),
    )
    def test_evaluation_positive(self, alpha, beta, x):
        assert PowerLaw(alpha, beta)(x) > 0

    @given(st.floats(min_value=-2.0, max_value=-0.1))
    def test_monotone_decreasing_beyond_clamp(self, alpha):
        law = PowerLaw(alpha, 0.01)
        xs = np.linspace(1.0, 1000.0, 50)
        values = law(xs)
        assert np.all(np.diff(values) <= 0)


class TestCategoricalProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sample_lands_on_positive_weight(self, weights, seed):
        w = np.array(weights)
        if w.sum() <= 0:
            return  # all-zero is a ValueError, covered by unit tests
        rng = np.random.default_rng(seed)
        idx = sample_categorical(rng, w)
        assert 0 <= idx < len(w)
        assert w[idx] > 0


class TestLogNormalizeProperties:
    @given(
        st.lists(
            st.floats(min_value=-500.0, max_value=500.0), min_size=1, max_size=30
        )
    )
    def test_output_is_distribution(self, logits):
        p = log_normalize(np.array(logits))
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    @given(
        st.lists(
            st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=20
        ),
        st.floats(min_value=-1000.0, max_value=1000.0),
    )
    def test_shift_invariance(self, logits, shift):
        a = log_normalize(np.array(logits))
        b = log_normalize(np.array(logits) + shift)
        assert np.allclose(a, b, atol=1e-9)


class TestTopKProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=10),
    )
    def test_topk_are_the_largest(self, values, k):
        p = np.array(values)
        top = top_k_indices(p, k)
        assert len(top) == min(k, len(p))
        assert len(set(top)) == len(top)
        if len(top) < len(p):
            threshold = min(p[i] for i in top)
            rest = [p[i] for i in range(len(p)) if i not in set(top)]
            assert all(v <= threshold + 1e-12 for v in rest)


class TestBucketProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=3000.0), st.booleans()
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_mass_conservation(self, pairs):
        d = np.array([p[0] for p in pairs])
        e = np.array([p[1] for p in pairs])
        b = bucket_following_pairs(d, e)
        assert b.totals.sum() == len(pairs)
        assert b.edges.sum() == e.sum()
        assert np.all(b.edges <= b.totals)


class TestTokenizerProperties:
    @given(st.text(max_size=300))
    def test_never_crashes_and_tokens_are_clean(self, text):
        tokens = tokenize(text)
        for tok in tokens:
            assert tok == tok.casefold()
            assert len(tok) > 1
            assert " " not in tok

    @given(st.text(alphabet=st.characters(whitelist_categories=["Lu", "Ll"]), max_size=50))
    def test_idempotent_on_own_output(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens


class TestNormalizePlaceNameProperties:
    @given(st.text(max_size=100))
    def test_idempotent(self, text):
        once = normalize_place_name(text)
        assert normalize_place_name(once) == once


class TestProfileInvariants:
    """Sampled profiles from a real fit satisfy distribution axioms."""

    def test_every_profile_is_distribution(self, fitted_result):
        for profile in fitted_result.profiles:
            probs = np.array([p for _, p in profile.entries])
            assert probs.sum() == pytest.approx(1.0)
            assert np.all(probs >= 0)
            locs = [l for l, _ in profile.entries]
            assert len(set(locs)) == len(locs)
