"""Query-result consistency under interleaved live ingest (property test).

The acceptance criterion for the query layer: after *any* sequence of
ingest deltas, every ``/query/*`` answer served over HTTP (which
reaches the index through **incremental** refreshes) must equal a
**from-scratch** rebuild of the index at the same generation.  Here a
seeded random sequence of deltas is streamed through ``POST /ingest``
on each topology while a reference predictor replays the identical
payloads offline; after every round, all four query routes are diffed
against a brand-new :class:`QueryService` over the reference (whose
first answer is always a full build).  Checked on both the threaded
server and the multi-process front end.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.query.service import QueryService
from repro.serving.foldin import FoldInPredictor
from repro.serving.frontend import FrontendThread, make_frontend
from repro.serving.server import apply_ingest, make_server
from repro.serving.store import WorldStore

ROUNDS = 4

ROUTES = (
    "/query/radius?radius=25000&lat=40&lon=-95&limit=1000",
    "/query/top-cities?k=25",
    "/query/venue-residents?venue_id=0&limit=1000",
    "/query/aggregate?by=state",
    "/query/aggregate?by=city&min_confidence=0.1",
)


@pytest.fixture(scope="module")
def result():
    dataset = generate_world(SyntheticWorldConfig(n_users=80, seed=23))
    params = MLPParams(n_iterations=10, burn_in=4, seed=0, engine="vectorized")
    return MLPModel(params).fit(dataset)


def _random_ingest_body(rng, n_users, n_locations, n_venues) -> dict:
    """One random, JSON-shaped ingest delta over the current world."""
    new_users = []
    for _ in range(int(rng.integers(0, 3))):
        if rng.random() < 0.6:
            new_users.append(
                {"observed_location": int(rng.integers(n_locations))}
            )
        else:
            new_users.append({})
    total = n_users + len(new_users)
    edges = [
        [int(s), int(d)]
        for s, d in zip(rng.integers(0, total, 6), rng.integers(0, total, 6))
        if s != d
    ]
    tweets = [
        [int(rng.integers(total)), int(rng.integers(n_venues))]
        for _ in range(4)
    ]
    labels = {}
    if rng.random() < 0.5:
        labels[str(int(rng.integers(n_users)))] = int(
            rng.integers(n_locations)
        )
    return {
        "new_users": new_users,
        "edges": edges,
        "tweets": tweets,
        "labels": labels,
    }


def _post(url: str, payload) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _get_raw(url: str) -> tuple[bytes, dict]:
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.read(), dict(response.headers)


def _run_property(base_url, reference: FoldInPredictor) -> None:
    rng = np.random.default_rng(42)
    for _ in range(ROUNDS):
        body = _random_ingest_body(
            rng,
            reference.world.n_users,
            reference.n_locations,
            reference.n_venues,
        )
        response = _post(f"{base_url}/ingest", body)
        apply_ingest(reference, body)
        assert response["generation"] == reference.world.generation
        assert response["world_hash"] == reference.world.content_hash
        for target in ROUTES:
            served_body, headers = _get_raw(base_url + target)
            served = json.loads(served_body)
            # A brand-new service => from-scratch index build.
            route, _, query = target.partition("?")
            expected = QueryService(reference).answer(route, query)
            assert served == json.loads(json.dumps(expected)), target
            assert headers["X-World-Generation"] == str(
                reference.world.generation
            )


def test_threaded_server_consistency(result):
    predictor = FoldInPredictor(result, artifact_id="consistency")
    server = make_server(predictor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        reference = FoldInPredictor(result, artifact_id="consistency")
        _run_property(f"http://{host}:{port}", reference)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_frontend_consistency(result, tmp_path):
    predictor = FoldInPredictor(result, artifact_id="consistency")
    store = WorldStore(tmp_path / "store", predictor.world.gazetteer)
    frontend = make_frontend(predictor, store, 2, port=0, coalesce_ms=2.0)
    ft = FrontendThread(frontend).start()
    try:
        reference = FoldInPredictor(result, artifact_id="consistency")
        _run_property(f"http://127.0.0.1:{ft.port}", reference)
    finally:
        ft.stop()
        store.close()
