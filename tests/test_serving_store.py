"""WorldStore tests: atomic publish, mmap acquire, retention, RCU safety."""

import json
import threading

import numpy as np
import pytest

from repro.data.columnar import WORLD_ARRAY_KEYS, compile_world
from repro.data.delta import WorldDelta, apply_delta
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.store import StoreError, WorldStore


@pytest.fixture(scope="module")
def dataset():
    return generate_world(SyntheticWorldConfig(n_users=60, seed=11))


@pytest.fixture(scope="module")
def base_world(dataset):
    return compile_world(dataset)


def _delta(gazetteer, seed: int, labels=None) -> WorldDelta:
    rng = np.random.default_rng(seed)
    payload = {
        "new_users": [{}],
        "edges": [
            [int(rng.integers(0, 50)), int(rng.integers(0, 50))]
        ],
        "tweets": [],
        "labels": labels or {},
    }
    return WorldDelta.from_payload(payload, gazetteer=gazetteer)


class TestPublishAcquire:
    def test_empty_store_refuses_acquire(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        assert store.current_generation() is None
        with pytest.raises(StoreError):
            store.acquire()

    def test_round_trip_is_bit_identical(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        store.publish(base_world)
        lease = store.acquire(verify=True)
        try:
            assert lease.generation == base_world.generation
            assert lease.content_hash == base_world.content_hash
            for key in WORLD_ARRAY_KEYS:
                original = getattr(base_world, key)
                loaded = getattr(lease.world, key)
                assert original.dtype == loaded.dtype
                assert np.array_equal(original, loaded)
        finally:
            lease.release()

    def test_acquired_arenas_are_readonly_mmaps(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        store.publish(base_world)
        lease = store.acquire()
        try:
            arena = lease.world.observed_location
            assert isinstance(arena, np.memmap)
            with pytest.raises(ValueError):
                arena[0] = 99
        finally:
            lease.release()

    def test_world_identity_restamped_from_meta(self, base_world, tmp_path):
        # load_dir gives generation 0 / a fresh hash; the store must
        # restore the *published* identity so RCU bookkeeping works.
        store = WorldStore(tmp_path, base_world.gazetteer)
        delta = _delta(base_world.gazetteer, seed=1)
        world1 = apply_delta(base_world, delta)
        store.publish(world1, label_users=delta.label_users.tolist())
        lease = store.acquire()
        try:
            assert lease.world.generation == world1.generation == 1
            assert lease.world.content_hash == world1.content_hash
        finally:
            lease.release()

    def test_republish_same_content_is_idempotent(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        first = store.publish(base_world)
        second = store.publish(base_world)
        assert first["content_hash"] == second["content_hash"]
        assert store.current_generation() == base_world.generation

    def test_conflicting_republish_is_refused(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        w1 = apply_delta(base_world, _delta(base_world.gazetteer, seed=2))
        w2 = apply_delta(base_world, _delta(base_world.gazetteer, seed=3))
        assert w1.generation == w2.generation == 1
        assert w1.content_hash != w2.content_hash
        store.publish(w1)
        with pytest.raises(StoreError, match="different content"):
            store.publish(w2)

    def test_manifest_tracks_newest_generation(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        store.publish(base_world)
        assert store.current_generation() == 0
        world = apply_delta(base_world, _delta(base_world.gazetteer, seed=4))
        store.publish(world)
        assert store.current_generation() == 1
        # A second store over the same directory (another process's
        # view) resolves the same manifest.
        other = WorldStore(tmp_path, base_world.gazetteer)
        assert other.current_generation() == 1


class TestRetention:
    def _publish_chain(self, store, base_world, n: int):
        """Publish base + n successors; returns every world, oldest first."""
        worlds = [base_world]
        store.publish(base_world)
        for i in range(n):
            worlds.append(
                apply_delta(
                    worlds[-1], _delta(base_world.gazetteer, seed=100 + i)
                )
            )
            store.publish(worlds[-1])
        return worlds

    def test_old_generations_are_retired(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer, retain=2)
        self._publish_chain(store, base_world, 5)
        assert store.generations_on_disk() == [4, 5]
        assert store.current_generation() == 5

    def test_leased_generation_survives_retention(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer, retain=2)
        store.publish(base_world)
        lease = store.acquire()  # pins generation 0
        worlds = self._publish_chain(store, base_world, 5)
        assert 0 in store.generations_on_disk()
        lease.release()
        # The next publish sweeps the now-unpinned generation.
        store.publish(
            apply_delta(worlds[-1], _delta(base_world.gazetteer, seed=999))
        )
        assert 0 not in store.generations_on_disk()

    def test_label_users_between_unions_metadata(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer, retain=10)
        store.publish(base_world)
        d1 = _delta(base_world.gazetteer, seed=5, labels={"3": 2})
        w1 = apply_delta(base_world, d1)
        store.publish(w1, label_users=d1.label_users.tolist())
        d2 = _delta(base_world.gazetteer, seed=6, labels={"7": 1, "9": 3})
        w2 = apply_delta(w1, d2)
        store.publish(w2, label_users=d2.label_users.tolist())
        assert store.label_users_between(0, 2) == sorted(
            set(d1.label_users.tolist()) | set(d2.label_users.tolist())
        )
        assert store.label_users_between(1, 2) == sorted(
            d2.label_users.tolist()
        )
        assert store.label_users_between(2, 2) == []

    def test_label_users_between_none_when_retired(
        self, base_world, tmp_path
    ):
        store = WorldStore(tmp_path, base_world.gazetteer, retain=2)
        self._publish_chain(store, base_world, 5)
        # Generations 0..3 are retired; provenance across them is
        # unknown, so the caller must fall back to a full cache clear.
        assert store.label_users_between(0, 5) is None


class TestWriterLock:
    def test_second_writer_is_rejected(self, base_world, tmp_path):
        first = WorldStore(tmp_path, base_world.gazetteer)
        first.lock_writer()
        second = WorldStore(tmp_path, base_world.gazetteer)
        with pytest.raises(StoreError, match="another writer"):
            second.lock_writer()
        first.unlock_writer()
        second.lock_writer()  # released lock is takeable
        second.unlock_writer()

    def test_lock_is_reentrant_within_owner(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        store.lock_writer()
        store.lock_writer()  # no self-deadlock
        store.close()


class TestRCUSafety:
    def test_concurrent_publish_and_acquire_never_torn(
        self, base_world, tmp_path
    ):
        """Readers hammering acquire(verify=True) against a live writer.

        ``verify=True`` recomputes the full-array digest of every
        acquired generation and compares it to the digest recorded at
        publish time -- a half-published generation (torn arenas,
        missing meta) cannot pass.  Retention is set low on purpose so
        readers also race directory retirement.
        """
        store = WorldStore(tmp_path, base_world.gazetteer, retain=2)
        store.publish(base_world)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            world = base_world
            try:
                for i in range(12):
                    world = apply_delta(
                        world, _delta(base_world.gazetteer, seed=300 + i)
                    )
                    store.publish(world)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            # A reader-side store handle, as a worker process would own.
            view = WorldStore(tmp_path, base_world.gazetteer, retain=2)
            try:
                while not stop.is_set():
                    lease = view.acquire(verify=True)
                    assert lease.world.generation == lease.generation
                    lease.release()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert store.current_generation() == 12

    def test_acquire_retries_through_current_on_retirement(
        self, base_world, tmp_path, monkeypatch
    ):
        """A reader that resolved a manifest just before retirement
        must re-resolve instead of failing."""
        store = WorldStore(tmp_path, base_world.gazetteer, retain=1)
        store.publish(base_world)
        reader = WorldStore(tmp_path, base_world.gazetteer)
        stale = reader.current_manifest()  # warms the stat cache
        assert stale["generation"] == 0
        world = apply_delta(base_world, _delta(base_world.gazetteer, seed=7))
        store.publish(world)  # retires generation 0 (retain=1)
        assert store.generations_on_disk() == [1]
        lease = reader.acquire()
        try:
            assert lease.generation == 1
        finally:
            lease.release()


class TestStats:
    def test_stats_shape(self, base_world, tmp_path):
        store = WorldStore(tmp_path, base_world.gazetteer)
        store.publish(base_world)
        lease = store.acquire()
        stats = store.stats()
        assert stats["generation"] == 0
        assert stats["on_disk"] == [0]
        assert stats["leased"] == {0: 1}
        lease.release()
        assert store.stats()["leased"] == {}
        assert json.dumps(store.stats())  # healthz-serializable
