"""Prediction-index tests: projection, incremental refresh, fallbacks.

The load-bearing contract pinned here is **refresh == rebuild, bit for
bit**: after any sequence of ingest deltas, ``PredictionIndex.refreshed``
must produce arrays identical to a from-scratch
``PredictionIndex.build`` at the same generation (the fold-in engine is
batch-composition-invariant, so this is achievable and therefore
required).  Also pinned: the loud ``StaleWindowError`` full-rebuild
fallback in :class:`repro.query.service.QueryService`, and the strict
query-parameter parsing both transports rely on for their 400s.
"""

import json

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.delta import StaleWindowError, WorldDelta
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.query import PredictionIndex, QueryService
from repro.serving.batch import score_population
from repro.serving.foldin import FoldInPredictor


@pytest.fixture(scope="module")
def dataset():
    return generate_world(SyntheticWorldConfig(n_users=100, seed=11))


@pytest.fixture(scope="module")
def result(dataset):
    params = MLPParams(n_iterations=10, burn_in=4, seed=0, engine="vectorized")
    return MLPModel(params).fit(dataset)


@pytest.fixture()
def predictor(result):
    """A fresh predictor per test: deltas must not leak across tests."""
    return FoldInPredictor(result, artifact_id="query-test")


def _random_delta(rng, predictor, label_user=None):
    """One plausible ingest delta: arrivals, edges, tweets, a label."""
    total = predictor.world.n_users
    labels = {}
    if label_user is not None:
        labels[int(label_user)] = int(rng.integers(predictor.n_locations))
    return WorldDelta(
        new_users=[
            int(rng.integers(predictor.n_locations))
            if rng.random() < 0.5
            else None
            for _ in range(3)
        ],
        edges=[
            (int(s), int(d))
            for s, d in zip(
                rng.integers(0, total, 8), rng.integers(0, total, 8)
            )
            if s != d
        ],
        tweets=[
            (int(rng.integers(total)), int(rng.integers(predictor.n_venues)))
            for _ in range(5)
        ],
        labels=labels,
    )


class TestProjection:
    def test_matches_score_population(self, predictor):
        index = PredictionIndex.build(predictor, k=3)
        scores = score_population(
            predictor.world, predictor.result, predictor=predictor
        )
        assert index.generation == 0
        assert index.artifact_id == "query-test"
        assert list(index.user_ids) == sorted(scores)
        for pos, uid in enumerate(index.user_ids):
            prediction = scores[int(uid)]
            entries = prediction.top_entries(3)
            start, stop = index.topk_indptr[pos], index.topk_indptr[pos + 1]
            assert [
                (int(loc), float(p))
                for loc, p in zip(
                    index.topk_locs[start:stop], index.topk_probs[start:stop]
                )
            ] == [(loc, float(p)) for loc, p in entries]
            if entries:
                assert index.homes[pos] == entries[0][0]
                assert index.confidences[pos] == entries[0][1]
                assert index.confidences[pos] == prediction.confidence
            else:
                assert index.homes[pos] == -1
                assert index.confidences[pos] == 0.0

    def test_only_unlabeled_users_indexed(self, predictor):
        index = PredictionIndex.build(predictor)
        labeled = np.flatnonzero(predictor.world.labeled_mask)
        assert not set(labeled) & {int(u) for u in index.user_ids}

    def test_inverted_csr_round_trips(self, predictor):
        index = PredictionIndex.build(predictor)
        seen = []
        for loc in range(index.home_indptr.size - 1):
            pos = index.home_pos[
                index.home_indptr[loc] : index.home_indptr[loc + 1]
            ]
            assert (index.homes[pos] == loc).all()
            # Ascending user id within each location.
            assert (np.diff(index.user_ids[pos]) > 0).all()
            seen.append(pos)
        all_pos = np.sort(np.concatenate(seen))
        assert np.array_equal(all_pos, np.flatnonzero(index.homes >= 0))

    def test_top_cities_order_and_exclusions(self, predictor):
        index = PredictionIndex.build(predictor)
        locs, counts = index.top_cities(k=10_000)
        assert (counts > 0).all()
        # Descending count; ties broken by ascending location id.
        for i in range(len(locs) - 1):
            assert counts[i] >= counts[i + 1]
            if counts[i] == counts[i + 1]:
                assert locs[i] < locs[i + 1]
        assert counts.sum() == np.count_nonzero(index.homes >= 0)

    def test_confidence_filter(self, predictor):
        index = PredictionIndex.build(predictor)
        threshold = float(np.median(index.confidences[index.homes >= 0]))
        counts = index.city_counts(threshold)
        mask = (index.homes >= 0) & (index.confidences >= threshold)
        assert counts.sum() == np.count_nonzero(mask)
        all_locs = np.arange(index.home_indptr.size - 1)
        pos = index.residents_of(all_locs, threshold)
        assert (index.confidences[pos] >= threshold).all()
        assert pos.size == np.count_nonzero(mask)

    def test_stats_block(self, predictor):
        index = PredictionIndex.build(predictor)
        stats = index.stats()
        assert stats["indexed_users"] == len(index)
        assert stats["with_home"] == int(np.count_nonzero(index.homes >= 0))
        assert stats["matching"] == stats["with_home"]
        assert 0.0 < stats["mean_confidence"] <= 1.0


class TestRefresh:
    def test_refresh_equals_rebuild_bit_for_bit(self, predictor):
        rng = np.random.default_rng(7)
        index = PredictionIndex.build(predictor)
        for _ in range(3):
            predictor.refresh(_random_delta(rng, predictor, label_user=5))
            index = index.refreshed(predictor)
            rebuilt = PredictionIndex.build(predictor)
            assert index.generation == predictor.world.generation
            assert index.same_projection(rebuilt)

    def test_same_generation_is_a_noop(self, predictor):
        index = PredictionIndex.build(predictor)
        assert index.refreshed(predictor) is index

    def test_newly_labeled_user_leaves_the_index(self, predictor):
        index = PredictionIndex.build(predictor)
        uid = int(index.user_ids[0])
        predictor.refresh(WorldDelta(labels={uid: 2}))
        refreshed = index.refreshed(predictor)
        assert uid not in refreshed.user_ids
        assert refreshed.same_projection(PredictionIndex.build(predictor))

    def test_stale_predictor_rejected(self, predictor, result):
        rng = np.random.default_rng(3)
        predictor.refresh(_random_delta(rng, predictor))
        index = PredictionIndex.build(predictor)
        behind = FoldInPredictor(result, artifact_id="query-test")
        with pytest.raises(ValueError, match="behind the index"):
            index.refreshed(behind)

    def test_lost_window_raises_stale_window_error(self, predictor):
        rng = np.random.default_rng(9)
        index = PredictionIndex.build(predictor)
        predictor.refresh(_random_delta(rng, predictor))
        # Simulate compaction past the window: drop the retained log.
        predictor.world.delta_log = ()
        with pytest.raises(StaleWindowError):
            index.refreshed(predictor)


class TestQueryService:
    def test_lazy_build_then_incremental_refresh(self, predictor):
        service = QueryService(predictor)
        first = service.answer("/query/top-cities", "")
        assert first["generation"] == 0
        rng = np.random.default_rng(1)
        predictor.refresh(_random_delta(rng, predictor))
        second = service.answer("/query/top-cities", "")
        assert second["generation"] == predictor.world.generation
        assert service.stale_window_fallbacks == 0

    def test_lost_window_falls_back_loudly(self, predictor):
        service = QueryService(predictor)
        service.answer("/query/aggregate", "")
        rng = np.random.default_rng(2)
        predictor.refresh(_random_delta(rng, predictor))
        predictor.world.delta_log = ()
        with pytest.warns(RuntimeWarning, match="refresh window lost"):
            payload = service.answer("/query/aggregate", "")
        assert payload["generation"] == predictor.world.generation
        assert service.stale_window_fallbacks == 1
        # The loud rebuild still answers exactly like a fresh service.
        fresh = QueryService(predictor)
        assert payload == fresh.answer("/query/aggregate", "")

    @pytest.mark.parametrize(
        ("route", "query", "fragment"),
        [
            ("/query/radius", "radius=50&bogus=1", "unknown query parameter"),
            ("/query/radius", "radius=50&lat=1&lat=2", "duplicate"),
            ("/query/radius", "lat=1&lon=2", "radius"),
            ("/query/radius", "radius=50", "lat= and lon="),
            ("/query/radius", "radius=50&lat=95&lon=0", "lat"),
            ("/query/radius", "radius=-1&lat=0&lon=0", "radius"),
            ("/query/radius", "radius=50&city=x&lat=1&lon=2", "not both"),
            ("/query/top-cities", "k=zero", "integer"),
            ("/query/top-cities", "k=0", "k must be in"),
            ("/query/venue-residents", "", "exactly one"),
            ("/query/venue-residents", "venue=a&venue_id=1", "exactly one"),
            (
                "/query/venue-residents",
                "venue=no-such-venue-name",
                "unknown venue",
            ),
            ("/query/aggregate", "by=county", "state"),
            ("/query/aggregate", "min_confidence=2", "min_confidence"),
        ],
    )
    def test_bad_parameters_are_value_errors(
        self, predictor, route, query, fragment
    ):
        service = QueryService(predictor)
        with pytest.raises(ValueError, match=fragment):
            service.answer(route, query)

    def test_ambiguous_city_lists_states(self, predictor):
        gazetteer = predictor.dataset.gazetteer
        names = {}
        for loc in gazetteer:
            names.setdefault(loc.name.split(",")[0].lower(), []).append(loc)
        ambiguous = next(
            (name for name, locs in names.items() if len(locs) > 1), None
        )
        if ambiguous is None:
            pytest.skip("gazetteer slice has no ambiguous city name")
        service = QueryService(predictor)
        with pytest.raises(ValueError, match="ambiguous"):
            service.answer(
                "/query/radius", f"radius=10&city={ambiguous}"
            )

    def test_radius_city_center_matches_coordinates(self, predictor):
        gazetteer = predictor.dataset.gazetteer
        location = gazetteer.by_id(0)
        service = QueryService(predictor)
        city, state = location.name.split(", ")
        by_city = service.answer(
            "/query/radius",
            f"radius=100&city={city.replace(' ', '%20')}&state={state}",
        )
        by_coords = service.answer(
            "/query/radius",
            f"radius=100&lat={location.lat}&lon={location.lon}",
        )
        assert by_city["center"]["location"] == location.location_id
        assert by_city["users"] == by_coords["users"]
        assert by_city["locations"] == by_coords["locations"]
        assert by_city["total"] == by_coords["total"]

    def test_payloads_are_json_serializable(self, predictor):
        service = QueryService(predictor)
        for route, query in [
            ("/query/radius", "radius=5000&lat=40&lon=-95&limit=3"),
            ("/query/top-cities", "k=5"),
            ("/query/aggregate", "by=city"),
        ]:
            payload = service.answer(route, query)
            assert json.loads(json.dumps(payload)) == payload

    def test_limit_truncates_and_reports(self, predictor):
        service = QueryService(predictor)
        full = service.answer("/query/radius", "radius=25000&lat=40&lon=-95")
        cut = service.answer(
            "/query/radius", "radius=25000&lat=40&lon=-95&limit=2"
        )
        assert cut["total"] == full["total"]
        assert len(cut["users"]) == min(2, cut["total"])
        assert cut["truncated"] == (cut["total"] > 2)
        assert cut["users"] == full["users"][:2]
