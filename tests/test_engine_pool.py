"""Tests for the multi-chain ChainPool: seeds, pooling, determinism."""

import numpy as np
import pytest

from repro.core.convergence import potential_scale_reduction
from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.engine.pool import SEED_STRIDE, ChainPool, chain_seeds


@pytest.fixture(scope="module")
def pool_params():
    return MLPParams(
        n_iterations=5, burn_in=2, seed=3, engine="vectorized", n_chains=3
    )


@pytest.fixture(scope="module")
def posterior(tiny_world, pool_params):
    return ChainPool(tiny_world, pool_params).run()


class TestSeeds:
    def test_schedule_is_deterministic(self):
        assert chain_seeds(3, 3) == [3, 3 + SEED_STRIDE, 3 + 2 * SEED_STRIDE]

    def test_chain_zero_uses_base_seed(self, posterior, pool_params):
        assert posterior.chains[0].seed == pool_params.seed

    def test_chains_differ(self, posterior):
        x0 = posterior.chains[0].final_state["x"]
        x1 = posterior.chains[1].final_state["x"]
        assert not np.array_equal(x0, x1)


class TestPooling:
    def test_pooled_counts_average(self, posterior, tiny_world):
        pooled = posterior.pooled_mean_counts()
        stacked = np.stack([c.mean_theta_counts for c in posterior.chains])
        assert np.allclose(pooled, stacked.mean(axis=0))
        assert pooled.shape == (tiny_world.n_users, 517)

    def test_merged_tally_sums_samples(self, posterior):
        merged = posterior.merged_edge_tally()
        per_chain = [c.edge_tally.n_samples for c in posterior.chains]
        assert merged.n_samples == sum(per_chain)

    def test_merge_does_not_mutate_chains(self, posterior):
        before = posterior.chains[0].edge_tally.n_samples
        posterior.merged_edge_tally()
        assert posterior.chains[0].edge_tally.n_samples == before

    def test_convergence_summary_keys(self, posterior):
        summary = posterior.convergence_summary()
        assert set(summary) == {
            "changed_fraction",
            "noise_following_fraction",
            "noise_tweeting_fraction",
        }
        for value in summary.values():
            assert value > 0.0

    def test_unknown_statistic_rejected(self, posterior):
        with pytest.raises(ValueError):
            posterior.r_hat("flux_capacitance")

    def test_single_draw_schedule_yields_nan_not_crash(self, tiny_world):
        """burn_in = n_iterations - 1 is legal; R-hat must degrade, not die."""
        import math

        params = MLPParams(n_iterations=3, burn_in=2, seed=1, n_chains=2)
        posterior = ChainPool(tiny_world, params).run()
        for value in posterior.convergence_summary().values():
            assert math.isnan(value)


class TestDeterminism:
    def test_restart_reproduces_pool(self, tiny_world, pool_params, posterior):
        """Same config => identical GibbsState across a pool restart."""
        again = ChainPool(tiny_world, pool_params).run()
        for a, b in zip(posterior.chains, again.chains):
            assert a.seed == b.seed
            for key in a.final_state:
                assert np.array_equal(a.final_state[key], b.final_state[key])
            assert np.array_equal(a.mean_theta_counts, b.mean_theta_counts)

    def test_parallel_equals_serial(self, tiny_world, pool_params, posterior):
        """Process fan-out is an execution detail, not a semantic one."""
        parallel = ChainPool(tiny_world, pool_params, processes=3).run()
        for a, b in zip(posterior.chains, parallel.chains):
            assert np.array_equal(a.mean_theta_counts, b.mean_theta_counts)
            for key in a.final_state:
                assert np.array_equal(a.final_state[key], b.final_state[key])

    def test_chain_zero_matches_single_chain_run(
        self, tiny_world, pool_params, posterior
    ):
        """A pool's first chain is the plain single-chain inference."""
        from repro.core.gibbs_em import run_inference

        single = run_inference(
            tiny_world, pool_params.with_overrides(n_chains=1)
        )
        assert np.array_equal(
            posterior.chains[0].final_state["x"], single.sampler.state.x
        )
        assert np.array_equal(
            posterior.chains[0].mean_theta_counts,
            single.sampler.state.mean_theta_counts(),
        )


class TestModelIntegration:
    def test_fit_with_chains_pools_posterior(self, tiny_world):
        params = MLPParams(
            n_iterations=4, burn_in=1, seed=3, engine="vectorized", n_chains=2
        )
        result = MLPModel(params).fit(tiny_world)
        assert result.posterior is not None
        assert result.posterior.n_chains == 2
        assert len(result.profiles) == tiny_world.n_users
        assert result.explanations  # merged tallies feed explanations

    def test_single_chain_has_no_posterior(self, fitted_result):
        assert fitted_result.posterior is None

    def test_metric_callback_rejected_with_chains(self, tiny_world):
        params = MLPParams(n_iterations=3, burn_in=1, n_chains=2)
        with pytest.raises(ValueError):
            MLPModel(params).fit(tiny_world, metric_callback=lambda s, i: 0.0)

    def test_fig5_forces_single_chain(self, tiny_world):
        """The reproduce --chains path: Fig. 5 probes one live chain."""
        import numpy as np

        from repro.evaluation.splits import single_holdout_split
        from repro.experiments import figures

        split = single_holdout_split(tiny_world, 0.2, seed=0)
        params = MLPParams(
            n_iterations=3,
            burn_in=1,
            seed=0,
            n_chains=2,
            track_edge_assignments=False,
        )
        result = figures.fig5(
            tiny_world.with_labels_hidden(split.test_user_ids),
            params,
            np.array(split.test_user_ids, dtype=np.int64),
            np.array(split.test_truth, dtype=np.int64),
        )
        assert len(result.accuracies) == 3


class TestPotentialScaleReduction:
    def test_agreeing_chains_near_one(self):
        rng = np.random.default_rng(0)
        chains = [rng.normal(0.5, 0.1, 200).tolist() for _ in range(4)]
        assert abs(potential_scale_reduction(chains) - 1.0) < 0.1

    def test_disagreeing_chains_large(self):
        rng = np.random.default_rng(0)
        chains = [
            (rng.normal(0.0, 0.01, 100)).tolist(),
            (rng.normal(5.0, 0.01, 100)).tolist(),
        ]
        assert potential_scale_reduction(chains) > 10.0

    def test_frozen_identical_chains(self):
        assert potential_scale_reduction([[1.0, 1.0], [1.0, 1.0]]) == 1.0

    def test_frozen_divergent_chains(self):
        assert potential_scale_reduction([[1.0, 1.0], [2.0, 2.0]]) == float(
            "inf"
        )

    def test_rejects_single_chain(self):
        with pytest.raises(ValueError):
            potential_scale_reduction([[1.0, 2.0]])

    def test_rejects_short_chains(self):
        with pytest.raises(ValueError):
            potential_scale_reduction([[1.0], [2.0]])

    def test_rejects_uneven_chains(self):
        with pytest.raises(ValueError):
            potential_scale_reduction([[1.0, 2.0], [1.0, 2.0, 3.0]])
