"""``repro query`` CLI tests: offline artifact mode and --url mode.

Offline mode must print exactly the JSON payload the HTTP routes
serve (same QueryService), so the two modes are diffable; bad queries
are exit code 2 with a ``bad query:`` diagnostic on stderr, not a
traceback.
"""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.artifacts import save_result
from repro.serving.foldin import FoldInPredictor
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    dataset = generate_world(SyntheticWorldConfig(n_users=70, seed=29))
    params = MLPParams(n_iterations=8, burn_in=3, seed=0, engine="vectorized")
    result = MLPModel(params).fit(dataset)
    path = tmp_path_factory.mktemp("artifact") / "model.mlp.npz"
    save_result(result, path)
    return path, result


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "top-cities"])

    def test_artifact_and_url_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "top-cities", "--artifact", "a", "--url", "b"]
            )

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_radius_requires_radius(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "radius", "--artifact", "a", "--lat", "1"]
            )


class TestOffline:
    def test_top_cities_prints_payload(self, artifact, capsys):
        path, _ = artifact
        rc = main(
            ["query", "top-cities", "--artifact", str(path), "-k", "5"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 5
        assert payload["generation"] == 0
        assert payload["cities"]
        assert all(
            city["predicted_residents"] > 0 for city in payload["cities"]
        )

    def test_aggregate_with_confidence_floor(self, artifact, capsys):
        path, _ = artifact
        rc = main(
            [
                "query", "aggregate", "--artifact", str(path),
                "--by", "state", "--min-confidence", "0.2",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["by"] == "state"
        assert payload["min_confidence"] == 0.2
        assert payload["summary"]["matching"] <= payload["summary"]["with_home"]

    def test_bad_query_is_exit_2_not_traceback(self, artifact, capsys):
        path, _ = artifact
        rc = main(
            [
                "query", "venue-residents", "--artifact", str(path),
                "--venue", "no-such-venue",
            ]
        )
        assert rc == 2
        captured = capsys.readouterr()
        assert "bad query:" in captured.err
        assert captured.out == ""


class TestRemote:
    def test_url_mode_matches_offline(self, artifact, capsys):
        path, result = artifact
        predictor = FoldInPredictor(result, artifact_id="cli-test")
        server = make_server(predictor, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            rc = main(
                [
                    "query", "top-cities",
                    "--url", f"http://{host}:{port}", "-k", "4",
                ]
            )
            assert rc == 0
            remote = json.loads(capsys.readouterr().out)
            rc = main(
                ["query", "top-cities", "--artifact", str(path), "-k", "4"]
            )
            assert rc == 0
            offline = json.loads(capsys.readouterr().out)
            # artifact_id differs (the offline load derives its own);
            # the analytics must not.
            for payload in (remote, offline):
                payload.pop("artifact_id")
            assert remote == offline
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unreachable_url_is_exit_2(self, artifact, capsys):
        rc = main(
            [
                "query", "top-cities",
                "--url", "http://127.0.0.1:1",
            ]
        )
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err
