"""Fault-injection helpers for the crash-recovery test harness.

Small, reusable corruption primitives over a journal directory --
torn writes (truncate mid-record), bit flips, duplicated tails -- plus
the golden-world comparators the recovery tests assert with: a
from-scratch recompile of a delta prefix and a bit-for-bit world
equality check.  Kept out of the test modules so the property-based
suite and the CLI round-trip tests can share one vocabulary of faults.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.columnar import WORLD_ARRAY_KEYS, ColumnarWorld
from repro.data.delta import WorldDelta
from repro.data.journal import JOURNAL_FILE, scan_journal


def journal_file(directory) -> Path:
    return Path(directory) / JOURNAL_FILE


def record_spans(directory) -> list[tuple[int, int]]:
    """Byte spans ``[start, end)`` of every valid record on disk."""
    records, _end, _err = scan_journal(journal_file(directory))
    return [(r.start, r.end) for r in records]


def truncate_at(directory, offset: int) -> None:
    """Torn write: cut the journal file to exactly ``offset`` bytes."""
    with open(journal_file(directory), "r+b") as fh:
        fh.truncate(offset)


def flip_byte(directory, offset: int, mask: int = 0xFF) -> None:
    """Bit-flip corruption at ``offset`` (XOR with ``mask``)."""
    path = journal_file(directory)
    data = bytearray(path.read_bytes())
    data[offset] ^= mask
    path.write_bytes(bytes(data))


def duplicate_tail(directory) -> None:
    """Re-append the last record verbatim (a crash-retry artifact)."""
    path = journal_file(directory)
    start, end = record_spans(directory)[-1]
    data = path.read_bytes()
    with open(path, "ab") as fh:
        fh.write(data[start:end])


# -- golden comparators ------------------------------------------------------


def random_delta(world, rng, n_new=5, n_edges=20, n_tweets=25, n_labels=4):
    """A valid random delta against ``world`` (arrivals may interlink)."""
    n_old = world.n_users
    n_total = n_old + n_new
    new_users = []
    for _ in range(n_new):
        observed = (
            int(rng.integers(0, world.n_locations))
            if rng.random() < 0.5
            else None
        )
        new_users.append({"observed_location": observed})
    edges = set()
    while len(edges) < n_edges:
        a = int(rng.integers(0, n_total))
        b = int(rng.integers(0, n_total))
        if a != b:
            edges.add((a, b))
    tweets = [
        [int(rng.integers(0, n_total)), int(rng.integers(0, world.n_venues))]
        for _ in range(n_tweets)
    ]
    labels = {}
    for _ in range(n_labels):
        uid = int(rng.integers(0, n_old))
        labels[str(uid)] = (
            int(rng.integers(0, world.n_locations))
            if rng.random() < 0.75
            else None
        )
    return WorldDelta.from_payload(
        {
            "new_users": new_users,
            "edges": sorted(edges),
            "tweets": tweets,
            "labels": labels,
        }
    )


def recompiled(world, deltas):
    """From-scratch compile of ``world`` + ``deltas`` -- the golden twin.

    Concatenates the base world's relationship arenas with every
    delta's arrivals/edges/tweets, patches labels last-write-wins, and
    recompiles through ``from_edge_arrays`` -- no splicing involved, so
    agreement with an ``apply_delta``/journal-replay world proves the
    incremental path bit-exact.
    """
    observed = [world.observed_location]
    edge_src = [world.edge_src]
    edge_dst = [world.edge_dst]
    tweet_user = [world.tweet_user]
    tweet_venue = [world.tweet_venue]
    label_patches: list[tuple[int, int]] = []
    for delta in deltas:
        observed.append(delta.new_user_labels)
        edge_src.append(delta.edge_src)
        edge_dst.append(delta.edge_dst)
        tweet_user.append(delta.tweet_user)
        tweet_venue.append(delta.tweet_venue)
        label_patches.extend(
            zip(delta.label_users.tolist(), delta.label_locations.tolist())
        )
    observed_all = np.concatenate(observed)
    for uid, loc in label_patches:
        observed_all[uid] = loc
    return ColumnarWorld.from_edge_arrays(
        world.gazetteer,
        observed_all,
        np.concatenate(edge_src),
        np.concatenate(edge_dst),
        np.concatenate(tweet_user),
        np.concatenate(tweet_venue),
    )


def assert_worlds_identical(actual, expected) -> None:
    """Bit-for-bit equality of two worlds' full array sets."""
    for key in WORLD_ARRAY_KEYS:
        a = getattr(actual, key)
        b = getattr(expected, key)
        assert a.dtype == b.dtype, f"{key}: dtype {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b), f"{key}: arrays differ"
    assert actual.rehash() == expected.rehash()
