"""Tests for the MLPModel facade and its result types."""

import pytest

from repro.core.model import MLPModel, mlp_c_params, mlp_u_params
from repro.core.params import MLPParams
from repro.core.results import LocationProfile


class TestProfiles:
    def test_one_profile_per_user(self, fitted_result, small_world):
        assert len(fitted_result.profiles) == small_world.n_users

    def test_profiles_normalized_and_sorted(self, fitted_result):
        for profile in fitted_result.profiles:
            probs = [p for _, p in profile.entries]
            assert sum(probs) == pytest.approx(1.0)
            assert probs == sorted(probs, reverse=True)

    def test_home_is_top_entry(self, fitted_result):
        p = fitted_result.profiles[0]
        assert p.home == p.entries[0][0]

    def test_predicted_homes_array(self, fitted_result, small_world):
        homes = fitted_result.predicted_homes()
        assert homes.shape == (small_world.n_users,)
        n_loc = len(small_world.gazetteer)
        assert homes.min() >= 0 and homes.max() < n_loc

    def test_labeled_users_predicted_at_label(self, fitted_result, small_world):
        observed = small_world.observed_locations
        matches = sum(
            fitted_result.predicted_home(u) == loc for u, loc in observed.items()
        )
        assert matches / len(observed) > 0.9

    def test_predicted_locations_top_k(self, fitted_result):
        top2 = fitted_result.predicted_locations(0, k=2)
        assert len(top2) <= 2
        assert top2[0] == fitted_result.predicted_home(0)


class TestExplanations:
    def test_one_explanation_per_edge(self, fitted_result, small_world):
        assert len(fitted_result.explanations) == small_world.n_following

    def test_explanation_indices_parallel(self, fitted_result, small_world):
        for s, expl in enumerate(fitted_result.explanations):
            assert expl.edge_index == s
            assert expl.follower == small_world.following[s].follower
            assert expl.friend == small_world.following[s].friend

    def test_noise_probabilities_in_unit_interval(self, fitted_result):
        for expl in fitted_result.explanations:
            assert 0.0 <= expl.noise_probability <= 1.0
            assert 0.0 <= expl.support <= 1.0

    def test_tweet_explanations_present(self, fitted_result, small_world):
        assert len(fitted_result.tweet_explanations) == small_world.n_tweeting

    def test_tracking_disabled_gives_empty(self, small_world):
        params = MLPParams(
            n_iterations=4, burn_in=1, seed=0, track_edge_assignments=False
        )
        result = MLPModel(params).fit(small_world)
        assert result.explanations == ()
        assert result.tweet_explanations == ()


class TestGeoGroups:
    def test_groups_partition_followers(self, fitted_result, small_world):
        uid = max(
            range(small_world.n_users),
            key=lambda u: len(small_world.followers_of[u]),
        )
        groups = fitted_result.geo_groups(uid)
        grouped = [f for members in groups.values() for f in members]
        assert sorted(grouped) == sorted(small_world.followers_of[uid])

    def test_group_keys_are_locations(self, fitted_result, small_world):
        uid = max(
            range(small_world.n_users),
            key=lambda u: len(small_world.followers_of[u]),
        )
        n_loc = len(small_world.gazetteer)
        for key in fitted_result.geo_groups(uid):
            assert 0 <= key < n_loc


class TestVariants:
    def test_mlp_u_has_no_tweet_explanations(self, small_world):
        params = mlp_u_params(MLPParams(n_iterations=4, burn_in=1, seed=0))
        result = MLPModel(params).fit(small_world)
        assert result.tweet_explanations == ()
        assert len(result.explanations) == small_world.n_following

    def test_mlp_c_has_no_edge_explanations(self, small_world):
        params = mlp_c_params(MLPParams(n_iterations=4, burn_in=1, seed=0))
        result = MLPModel(params).fit(small_world)
        assert result.explanations == ()
        assert len(result.tweet_explanations) == small_world.n_tweeting


class TestResultMetadata:
    def test_law_history_nonempty(self, fitted_result):
        assert len(fitted_result.law_history) >= 1
        assert fitted_result.fitted_law is fitted_result.law_history[-1]

    def test_fitted_law_has_negative_alpha(self, fitted_result):
        assert fitted_result.fitted_law.alpha < 0

    def test_trace_covers_all_iterations(self, fitted_result, small_params):
        assert len(fitted_result.trace) == small_params.n_iterations


class TestLocationProfileType:
    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            LocationProfile(user_id=0, entries=((1, 0.6), (2, 0.6)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LocationProfile(user_id=0, entries=((1, -0.5), (2, 1.5)))

    def test_empty_profile_home_is_none(self):
        assert LocationProfile(user_id=0, entries=()).home is None

    def test_probability_of(self):
        p = LocationProfile(user_id=0, entries=((3, 0.7), (1, 0.3)))
        assert p.probability_of(3) == 0.7
        assert p.probability_of(99) == 0.0

    def test_probability_of_uses_lazy_index(self):
        p = LocationProfile(user_id=0, entries=((3, 0.7), (1, 0.3)))
        assert p._prob_index is None
        assert p.probability_of(1) == 0.3
        assert p._prob_index == {3: 0.7, 1: 0.3}
        # Repeated lookups hit the same dict (no rebuild).
        index = p._prob_index
        assert p.probability_of(3) == 0.7
        assert p._prob_index is index

    def test_lazy_index_excluded_from_equality(self):
        a = LocationProfile(user_id=0, entries=((3, 0.7), (1, 0.3)))
        b = LocationProfile(user_id=0, entries=((3, 0.7), (1, 0.3)))
        a.probability_of(3)  # builds a's index, not b's
        assert a == b

    def test_above_threshold(self):
        p = LocationProfile(user_id=0, entries=((3, 0.7), (1, 0.3)))
        assert p.above_threshold(0.5) == [3]
        assert p.above_threshold(0.1) == [3, 1]

    def test_describe(self, gazetteer):
        p = LocationProfile(user_id=0, entries=((0, 1.0),))
        text = p.describe(gazetteer)
        assert "New York, NY" in text
        assert "1.00" in text
