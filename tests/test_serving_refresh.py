"""Live serving refresh: streamed deltas vs from-scratch recompile.

The serving half of the streaming-ingest golden contract: a predictor
refreshed with N interleaved :class:`WorldDelta` batches must produce
**bit-identical** fold-in output (phi / theta / iterations / converged)
to a predictor built over a from-scratch recompile of the same final
dataset -- across ablations, interleavings and batch/sequential paths.
Plus the surgical cache-invalidation policy that makes refresh cheap.
"""

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.columnar import ColumnarWorld
from repro.data.delta import WorldDelta
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.batch import score_population
from repro.serving.foldin import FoldInPredictor, UserSpec


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=110, seed=17))


@pytest.fixture(scope="module")
def result(world):
    params = MLPParams(n_iterations=14, burn_in=6, seed=0, engine="vectorized")
    return MLPModel(params).fit(world)


def stream_deltas(predictor, seed=42, rounds=3):
    """Apply a deterministic mixed-delta stream; returns the deltas."""
    rng = np.random.default_rng(seed)
    deltas = []
    for _ in range(rounds):
        n = predictor.world.n_users
        total = n + 4
        delta = WorldDelta(
            new_users=[
                int(rng.integers(predictor.n_locations))
                if rng.random() < 0.7
                else None
                for _ in range(4)
            ],
            edges=[
                (int(s), int(d))
                for s, d in zip(
                    rng.integers(0, total, 10), rng.integers(0, total, 10)
                )
                if s != d
            ],
            tweets=[
                (int(rng.integers(total)), int(rng.integers(predictor.n_venues)))
                for _ in range(8)
            ],
            labels={int(rng.integers(110)): int(rng.integers(predictor.n_locations))},
        )
        deltas.append(delta)
        predictor.refresh(delta)
    return deltas


def recompiled_twin(result, refreshed_world):
    """A fresh predictor over a from-scratch recompile of the final world."""
    scratch = ColumnarWorld.from_edge_arrays(
        refreshed_world.gazetteer,
        observed_location=refreshed_world.observed_location.copy(),
        edge_src=refreshed_world.edge_src.copy(),
        edge_dst=refreshed_world.edge_dst.copy(),
        tweet_user=refreshed_world.tweet_user.copy(),
        tweet_venue=refreshed_world.tweet_venue.copy(),
    )
    assert scratch.rehash() == refreshed_world.rehash()
    return FoldInPredictor(result, artifact_id="twin", world=scratch)


def assert_solutions_identical(a, b):
    assert np.array_equal(a.candidates, b.candidates)
    assert np.array_equal(a.phi, b.phi)
    assert np.array_equal(a.theta, b.theta)
    assert a.iterations == b.iterations
    assert a.converged == b.converged


class TestGoldenRefresh:
    def test_interleaved_refreshes_match_recompile(self, result):
        """Acceptance: fold-in after N interleaved applies == recompile."""
        predictor = FoldInPredictor(result, artifact_id="live")
        stream_deltas(predictor)
        assert predictor.world.generation == 3
        twin = recompiled_twin(result, predictor.world)
        specs = [
            predictor.spec_for_training_user(uid)
            for uid in range(predictor.world.n_users)
        ]
        specs.append(UserSpec(friends=(3, predictor.world.n_users - 1)))
        for spec in specs:
            assert_solutions_identical(
                predictor._solve(spec), twin._solve(spec)
            )

    def test_batch_path_matches_after_refresh(self, result):
        predictor = FoldInPredictor(result, artifact_id="live-batch")
        stream_deltas(predictor)
        specs = [
            predictor.spec_for_training_user(uid)
            for uid in range(0, predictor.world.n_users, 2)
        ]
        sequential = [predictor._solve(spec) for spec in specs]
        batched = predictor.batch_engine.solve(specs)
        for a, b in zip(sequential, batched):
            assert_solutions_identical(a, b)

    @pytest.mark.parametrize(
        "ablation",
        [
            {"use_tweeting": False},
            {"use_following": False},
            {"use_candidacy": False},
        ],
    )
    def test_refresh_matches_recompile_under_ablations(self, world, ablation):
        params = MLPParams(
            n_iterations=8, burn_in=3, seed=1, engine="vectorized", **ablation
        )
        result = MLPModel(params).fit(world)
        predictor = FoldInPredictor(result, artifact_id="abl")
        stream_deltas(predictor, rounds=2)
        twin = recompiled_twin(result, predictor.world)
        for uid in range(0, predictor.world.n_users, 3):
            spec = predictor.spec_for_training_user(uid)
            assert_solutions_identical(
                predictor._solve(spec), twin._solve(spec)
            )

    def test_frozen_tables_survive_refresh(self, result):
        """Ingest must not reweight the frozen posterior's noise models."""
        predictor = FoldInPredictor(result, artifact_id="frozen")
        fr, tr = predictor._fr_noise, predictor._tr_probs
        stream_deltas(predictor, rounds=1)
        assert predictor._fr_noise == fr
        assert predictor._tr_probs is tr


class TestNewArrivals:
    def test_new_user_scores_through_training_neighbours(self, result):
        predictor = FoldInPredictor(result, artifact_id="arrivals")
        labeled = [
            uid
            for uid in range(predictor.world.n_users)
            if predictor.world.observed_location[uid] >= 0
        ][:2]
        n = predictor.world.n_users
        predictor.refresh(
            WorldDelta(new_users=[None], edges=[(n, labeled[0]), (n, labeled[1])])
        )
        spec = predictor.spec_for_training_user(n)
        prediction = predictor.predict(spec)
        observed = {
            int(predictor.world.observed_location[u]) for u in labeled
        }
        assert prediction.home in observed

    def test_new_user_as_neighbour_contributes_noise_only(self, result):
        """An ingested user has no frozen profile: K_j = 0, noise branch."""
        predictor = FoldInPredictor(result, artifact_id="noise-only")
        n = predictor.world.n_users
        predictor.refresh(WorldDelta(new_users=[5]))
        locs, probs = predictor._profile_of(n)
        assert locs.size == 0 and probs.size == 0
        assert not predictor._kernel_row(n).any()
        explanation = predictor.explain_edge(
            UserSpec(observed_location=2), neighbor=n
        )
        assert explanation.noise_probability == 1.0
        assert explanation.pairs == ()

    def test_world_may_only_grow(self, result):
        small = generate_world(SyntheticWorldConfig(n_users=20, seed=1))
        from repro.data.columnar import compile_world

        with pytest.raises(ValueError, match="only grow"):
            FoldInPredictor(result, world=compile_world(small))


class TestSurgicalInvalidation:
    def test_relabel_invalidates_exactly_tagged_entries(self, result):
        predictor = FoldInPredictor(result, artifact_id="tags")
        touched_spec = UserSpec(friends=(7,))
        untouched_spec = UserSpec(friends=(8,), venues=(3,))
        predictor.predict(touched_spec)
        predictor.predict(untouched_spec)
        assert predictor.predict(touched_spec).from_cache
        assert predictor.predict(untouched_spec).from_cache
        predictor.refresh(WorldDelta(labels={7: 2}))
        assert not predictor.predict(touched_spec).from_cache
        assert predictor.predict(untouched_spec).from_cache
        assert predictor.cache.stats()["invalidations"] == 1

    def test_edge_only_delta_keeps_cache(self, result):
        predictor = FoldInPredictor(result, artifact_id="keep")
        spec = UserSpec(friends=(5,), venues=(1,))
        predictor.predict(spec)
        predictor.refresh(WorldDelta(edges=[(5, 9)], tweets=[(5, 2)]))
        assert predictor.predict(spec).from_cache

    def test_kernel_rows_survive_refresh(self, result):
        predictor = FoldInPredictor(result, artifact_id="kernels")
        row = predictor._kernel_row(4)
        predictor.refresh(WorldDelta(labels={4: 1}))
        assert predictor._kernel_row(4) is row


class TestIncrementalScoring:
    def test_since_generation_scores_only_affected(self, result):
        predictor = FoldInPredictor(result, artifact_id="incr")
        world = predictor.world
        unlabeled = np.flatnonzero(~world.labeled_mask)
        target = int(unlabeled[0])
        other_unlabeled = int(unlabeled[1])
        base_generation = world.generation
        new_world = predictor.refresh(WorldDelta(edges=[(target, 3)]))
        scored = score_population(
            new_world,
            result,
            predictor=predictor,
            since_generation=base_generation,
        )
        assert target in scored
        assert other_unlabeled not in scored
        # Labeled touched users are not population-scoring targets.
        assert all(new_world.observed_location[uid] < 0 for uid in scored)

    def test_since_current_generation_is_empty(self, result):
        predictor = FoldInPredictor(result, artifact_id="incr2")
        new_world = predictor.refresh(WorldDelta(edges=[(1, 2)]))
        scored = score_population(
            new_world,
            result,
            predictor=predictor,
            since_generation=new_world.generation,
        )
        assert scored == {}

    def test_full_population_still_scores_after_refresh(self, result):
        predictor = FoldInPredictor(result, artifact_id="incr3")
        new_world = predictor.refresh(WorldDelta(new_users=[None]))
        scored = score_population(new_world, result, predictor=predictor)
        unlabeled = np.flatnonzero(~new_world.labeled_mask)
        assert sorted(scored) == unlabeled.tolist()


class TestRefreshRaces:
    def test_stale_solve_result_is_not_cached(self, result):
        """A prediction solved against a refreshed-away world snapshot
        must be dropped at put time, or it would serve stale *after*
        the refresh's invalidation pass."""
        predictor = FoldInPredictor(result, artifact_id="race")
        spec = UserSpec(friends=(7,))
        stale_world = predictor.world
        stale_prediction = predictor._render(
            predictor._solve(spec, stale_world)
        )
        predictor.refresh(WorldDelta(labels={7: 2}))
        key = (predictor.artifact_id, spec.signature())
        predictor._cache_put(
            [(key, stale_prediction, predictor._spec_tags(spec))], stale_world
        )
        assert predictor.cache.get(key) is None
        # The same put against the live world lands normally.
        predictor._cache_put(
            [(key, stale_prediction, predictor._spec_tags(spec))],
            predictor.world,
        )
        assert predictor.cache.get(key) is not None

    def test_malformed_label_payload_is_value_error(self, result):
        predictor = FoldInPredictor(result, artifact_id="shape")
        with pytest.raises(ValueError, match="labels"):
            WorldDelta.from_payload(
                {"labels": [1, 2]}, gazetteer=predictor.world.gazetteer
            )
