"""Unit tests for distance bucketing (the Fig. 3(a) pipeline)."""

import numpy as np
import pytest

from repro.mathx.buckets import (
    bucket_following_pairs,
    log_spaced_bucket_following_pairs,
)


class TestUniformBuckets:
    def test_basic_counting(self):
        d = np.array([0.5, 0.7, 1.5, 1.9, 5.2])
        e = np.array([True, False, True, True, False])
        b = bucket_following_pairs(d, e, bucket_miles=1.0)
        # Buckets 0, 1 and 5 are occupied.
        assert len(b) == 3
        assert b.totals.tolist() == [2.0, 2.0, 1.0]
        assert b.edges.tolist() == [1.0, 2.0, 0.0]

    def test_probabilities(self):
        d = np.array([0.5, 0.7, 1.5, 1.9])
        e = np.array([True, False, True, True])
        b = bucket_following_pairs(d, e)
        assert b.probabilities.tolist() == [0.5, 1.0]

    def test_first_bucket_center_clamped_to_width(self):
        b = bucket_following_pairs(
            np.array([0.1]), np.array([True]), bucket_miles=1.0
        )
        assert b.centers[0] == 1.0

    def test_later_bucket_centers_are_midpoints(self):
        b = bucket_following_pairs(
            np.array([10.2]), np.array([False]), bucket_miles=1.0
        )
        assert b.centers[0] == pytest.approx(10.5)

    def test_max_miles_filter(self):
        d = np.array([1.0, 500.0])
        e = np.array([True, True])
        b = bucket_following_pairs(d, e, max_miles=100.0)
        assert b.totals.sum() == 1.0

    def test_empty_input(self):
        b = bucket_following_pairs(np.array([]), np.array([]))
        assert len(b) == 0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bucket_following_pairs(np.array([1.0]), np.array([True, False]))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bucket_following_pairs(np.array([1.0]), np.array([1]), bucket_miles=0)

    def test_nonzero_filters_empty_edge_buckets(self):
        d = np.array([0.5, 10.0])
        e = np.array([True, False])
        b = bucket_following_pairs(d, e).nonzero()
        assert len(b) == 1
        assert b.edges[0] == 1.0


class TestLogSpacedBuckets:
    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        d = rng.uniform(1.0, 2500.0, size=500)
        e = rng.random(500) < 0.1
        b = log_spaced_bucket_following_pairs(d, e, n_buckets=20)
        assert b.totals.sum() == 500
        assert b.edges.sum() == e.sum()

    def test_centers_increase(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(1.0, 2500.0, size=200)
        e = rng.random(200) < 0.5
        b = log_spaced_bucket_following_pairs(d, e, n_buckets=15)
        assert np.all(np.diff(b.centers) > 0)

    def test_out_of_range_clamped(self):
        d = np.array([0.01, 9999.0])
        e = np.array([True, True])
        b = log_spaced_bucket_following_pairs(
            d, e, n_buckets=5, min_miles=1.0, max_miles=3000.0
        )
        assert b.totals.sum() == 2

    def test_rejects_too_few_buckets(self):
        with pytest.raises(ValueError):
            log_spaced_bucket_following_pairs(
                np.array([1.0]), np.array([True]), n_buckets=1
            )

    def test_power_law_recoverable_through_pipeline(self):
        """End-to-end: pairs drawn from a power law refit to it."""
        from repro.mathx.powerlaw import PowerLaw, fit_power_law

        rng = np.random.default_rng(7)
        truth = PowerLaw(alpha=-0.55, beta=0.05)
        d = np.exp(rng.uniform(0.0, np.log(2000.0), size=200_000))
        e = rng.random(d.size) < truth(d)
        b = log_spaced_bucket_following_pairs(d, e, n_buckets=25).nonzero()
        law = fit_power_law(b.centers, b.probabilities, weights=b.totals)
        assert law.alpha == pytest.approx(-0.55, abs=0.08)
        assert law.beta == pytest.approx(0.05, rel=0.3)
