"""ColumnarWorld compiler tests: fidelity, memoization, persistence."""

import pickle

import numpy as np
import pytest

from repro.core.params import MLPParams
from repro.core.priors import (
    build_user_priors,
    candidate_locations_for,
    venue_referent_map,
)
from repro.data import columnar
from repro.data.columnar import ColumnarWorld, compile_world, register_world
from repro.data.model import Dataset, FollowingEdge, User


@pytest.fixture(scope="module")
def world(tiny_world):
    return compile_world(tiny_world)


class TestCompileFidelity:
    """Every compiled structure reproduces the object-graph derivation."""

    def test_sizes(self, tiny_world, world):
        assert world.n_users == tiny_world.n_users
        assert world.n_following == tiny_world.n_following
        assert world.n_tweeting == tiny_world.n_tweeting
        assert world.n_locations == len(tiny_world.gazetteer)
        assert world.n_venues == len(tiny_world.gazetteer.venue_vocabulary)

    def test_edge_arenas_in_dataset_order(self, tiny_world, world):
        assert world.edge_src.tolist() == [
            e.follower for e in tiny_world.following
        ]
        assert world.edge_dst.tolist() == [
            e.friend for e in tiny_world.following
        ]
        assert world.tweet_user.tolist() == [
            t.user for t in tiny_world.tweeting
        ]
        assert world.tweet_venue.tolist() == [
            t.venue_id for t in tiny_world.tweeting
        ]

    def test_adjacency_csr(self, tiny_world, world):
        for uid in range(tiny_world.n_users):
            assert tuple(world.friends_of(uid).tolist()) == tiny_world.friends_of[uid]
            assert tuple(world.followers_of(uid).tolist()) == tiny_world.followers_of[uid]
            assert tuple(world.neighbors_of(uid).tolist()) == tiny_world.neighbors_of[uid]
            assert tuple(world.venues_of(uid).tolist()) == tiny_world.venues_of[uid]

    def test_user_table(self, tiny_world, world):
        observed = tiny_world.observed_locations
        for uid in range(tiny_world.n_users):
            expected = observed.get(uid, -1)
            assert int(world.observed_location[uid]) == expected
            if expected >= 0:
                assert int(world.observed_venue[uid]) == (
                    tiny_world.gazetteer.venue_id_of_location(expected)
                )
            else:
                assert int(world.observed_venue[uid]) == -1
        assert world.labeled_mask.sum() == len(tiny_world.labeled_user_ids)

    def test_venue_mention_counts(self, tiny_world, world):
        assert np.array_equal(
            world.venue_mention_counts, tiny_world.venue_mention_counts
        )

    def test_referent_csr(self, tiny_world, world):
        referents = venue_referent_map(tiny_world)
        for vid in range(world.n_venues):
            assert set(world.referents_of(vid).tolist()) == set(referents[vid])
            # sorted: candidacy code binary-searches these slices
            assert np.all(np.diff(world.referents_of(vid)) > 0) or (
                world.referents_of(vid).size <= 1
            )

    def test_candidate_csr_matches_reference(self, tiny_world, world):
        referents = venue_referent_map(tiny_world)
        for uid in range(tiny_world.n_users):
            expected = candidate_locations_for(tiny_world, uid, referents)
            assert world.candidates_of(uid).tolist() == sorted(expected)


class TestCompileOnce:
    def test_memoized_per_dataset(self, tiny_world):
        before = columnar.compile_count()
        a = compile_world(tiny_world)
        b = compile_world(tiny_world)
        assert a is b
        assert columnar.compile_count() == before

    def test_world_passthrough(self, world):
        assert compile_world(world) is world

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            compile_world([1, 2, 3])

    def test_register_world_preseeds_memo(self, gazetteer):
        ds = Dataset(gazetteer, [User(0), User(1)], [FollowingEdge(0, 1)], [])
        world = ColumnarWorld.compile(ds)
        register_world(ds, world)
        before = columnar.compile_count()
        assert compile_world(ds) is world
        assert columnar.compile_count() == before


class TestPersistence:
    def test_round_trip_preserves_hash(self, tiny_world, world):
        rebuilt = ColumnarWorld.from_arrays(
            tiny_world.gazetteer, world.to_arrays()
        )
        assert rebuilt.content_hash == world.content_hash

    def test_missing_array_rejected(self, tiny_world, world):
        arrays = world.to_arrays()
        del arrays["cand_indices"]
        with pytest.raises(ValueError, match="missing"):
            ColumnarWorld.from_arrays(tiny_world.gazetteer, arrays)

    def test_inconsistent_csr_rejected(self, tiny_world, world):
        arrays = dict(world.to_arrays())
        arrays["out_indptr"] = arrays["out_indptr"][:-1]
        with pytest.raises(ValueError):
            ColumnarWorld.from_arrays(tiny_world.gazetteer, arrays)

    def test_out_of_range_ids_rejected(self, tiny_world, world):
        arrays = dict(world.to_arrays())
        bad = arrays["edge_dst"].copy()
        bad[0] = world.n_users + 7
        arrays["edge_dst"] = bad
        with pytest.raises(ValueError, match="edge_dst"):
            ColumnarWorld.from_arrays(tiny_world.gazetteer, arrays)

    def test_pickle_drops_object_graph_but_keeps_identity(self, world):
        clone = pickle.loads(pickle.dumps(world))
        assert clone.content_hash == world.content_hash
        assert clone._dataset_ref is None
        assert np.array_equal(clone.cand_indices, world.cand_indices)

    def test_memory_report_covers_every_arena(self, world):
        from repro.data.columnar import WORLD_ARRAY_KEYS

        report = world.memory_report()
        assert set(report) == set(WORLD_ARRAY_KEYS) | {"total_bytes"}
        assert report["total_bytes"] == sum(
            report[k]["bytes"] for k in WORLD_ARRAY_KEYS
        )
        assert report["edge_src"]["bytes"] == world.edge_src.nbytes
        assert report["edge_src"]["dtype"] == str(world.edge_src.dtype)

    def test_dump_load_dir_mmap_round_trip(self, tiny_world, world, tmp_path):
        world.dump_dir(tmp_path / "w")
        loaded = ColumnarWorld.load_dir(
            tiny_world.gazetteer, tmp_path / "w", mmap=True
        )
        assert isinstance(loaded.edge_src, np.memmap)
        assert loaded.rehash() == world.rehash()
        eager = ColumnarWorld.load_dir(
            tiny_world.gazetteer, tmp_path / "w", mmap=False
        )
        assert not isinstance(eager.edge_src, np.memmap)
        assert eager.rehash() == world.rehash()


class TestDatasetBridge:
    def test_to_dataset_round_trips_relationships(self, world):
        ds = world.to_dataset()
        assert ds.n_users == world.n_users
        assert [e.follower for e in ds.following] == world.edge_src.tolist()
        assert [t.venue_id for t in ds.tweeting] == world.tweet_venue.tolist()
        # materialization registers the pair: no re-compile
        before = columnar.compile_count()
        assert compile_world(ds) is world
        assert columnar.compile_count() == before

    def test_require_dataset_returns_source(self, tiny_world, world):
        assert world.require_dataset() is tiny_world

    def test_compiled_world_fits_like_dataset(self, tiny_world):
        """A bare world (object graph dropped) drives a full fit."""
        from repro.core.model import MLPModel

        bare = pickle.loads(pickle.dumps(compile_world(tiny_world)))
        params = MLPParams(n_iterations=3, burn_in=1, seed=4)
        via_world = MLPModel(params).fit(bare)
        via_dataset = MLPModel(params).fit(tiny_world)
        for a, b in zip(via_world.profiles, via_dataset.profiles):
            assert a.entries == b.entries


class TestPriorsOnWorld:
    def test_world_and_dataset_priors_identical(self, tiny_world, world):
        params = MLPParams()
        a = build_user_priors(tiny_world, params)
        b = build_user_priors(world, params)
        for ca, cb in zip(a.candidates, b.candidates):
            assert np.array_equal(ca, cb)
        for ga, gb in zip(a.gamma, b.gamma):
            assert np.array_equal(ga, gb)
        assert np.array_equal(a.gamma_sum, b.gamma_sum)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_tweeting": False},
            {"use_following": False},
            {"use_candidacy": False},
        ],
    )
    def test_ablation_variants_match_reference(self, tiny_world, overrides):
        params = MLPParams(**overrides)
        priors = build_user_priors(compile_world(tiny_world), params)
        referents = venue_referent_map(tiny_world)
        n_loc = len(tiny_world.gazetteer)
        for uid in range(tiny_world.n_users):
            if params.use_candidacy:
                expected = sorted(
                    candidate_locations_for(
                        tiny_world,
                        uid,
                        referents,
                        use_following=params.use_following,
                        use_tweeting=params.use_tweeting,
                    )
                ) or list(range(n_loc))
            else:
                expected = list(range(n_loc))
            assert priors.candidates[uid].tolist() == expected

    def test_packed_layout(self, tiny_world):
        priors = build_user_priors(tiny_world, MLPParams())
        pack = priors.packed()
        assert priors.packed() is pack  # cached
        assert pack.total_slots == sum(c.size for c in priors.candidates)
        offsets = pack.offsets
        for uid, cand in enumerate(priors.candidates):
            lo, hi = int(offsets[uid]), int(offsets[uid + 1])
            assert np.array_equal(pack.flat_candidates[lo:hi], cand)
            assert np.all(pack.slot_user[lo:hi] == uid)
            assert np.array_equal(pack.flat_gamma[lo:hi], priors.gamma[uid])
