"""Tests for the ablation drivers."""

import pytest

from repro.core.params import MLPParams
from repro.evaluation.splits import single_holdout_split
from repro.experiments import ablations


@pytest.fixture(scope="module")
def split(small_world):
    return single_holdout_split(small_world, 0.25, seed=1)


@pytest.fixture(scope="module")
def fast_params():
    return MLPParams(
        n_iterations=8, burn_in=3, seed=0, track_edge_assignments=False
    )


class TestNoiseMixtureAblation:
    def test_two_outcomes(self, small_world, split, fast_params):
        outcomes = ablations.ablate_noise_mixture(
            small_world, split, fast_params
        )
        assert [o.variant for o in outcomes] == [
            "with noise mixture",
            "without noise mixture",
        ]
        for o in outcomes:
            assert 0.0 <= o.accuracy <= 1.0
            assert o.seconds > 0


class TestSupervisionAblation:
    def test_boost_helps(self, small_world, split, fast_params):
        outcomes = ablations.ablate_supervision(small_world, split, fast_params)
        with_boost, without_boost = outcomes
        assert with_boost.accuracy >= without_boost.accuracy


class TestCandidacyAblation:
    def test_candidacy_is_faster(self, tiny_world, fast_params):
        split = single_holdout_split(tiny_world, 0.25, seed=1)
        params = fast_params.with_overrides(n_iterations=4, burn_in=1)
        outcomes = ablations.ablate_candidacy(tiny_world, split, params)
        with_cand, full_gaz = outcomes
        assert full_gaz.seconds > with_cand.seconds


class TestGibbsEMAblation:
    def test_rows_per_round(self, small_world, split, fast_params):
        outcomes = ablations.ablate_gibbs_em(
            small_world, split, fast_params, rounds=(0, 1)
        )
        assert [o.variant for o in outcomes] == ["em_rounds=0", "em_rounds=1"]
        for o in outcomes:
            assert "alpha=" in o.detail


class TestRendering:
    def test_render_contains_rows(self, small_world, split, fast_params):
        outcomes = ablations.ablate_supervision(small_world, split, fast_params)
        text = ablations.render_ablation("supervision", outcomes)
        assert "Ablation: supervision" in text
        assert "ACC@100" in text
        assert "with supervision boost" in text

    def test_render_handles_nan_seconds(self):
        outcome = ablations.AblationOutcome(
            variant="x", accuracy=0.5, seconds=float("nan"), detail="d"
        )
        text = ablations.render_ablation("t", [outcome])
        assert "[d]" in text
