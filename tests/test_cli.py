"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_world(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "world.json"
    rc = main(
        [
            "generate",
            str(path),
            "--users",
            "120",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.json"])
        assert args.users == 1000
        assert args.seed == 7

    def test_engine_flags_default(self):
        args = build_parser().parse_args(["fit", "world.json"])
        assert args.engine == "loop"
        assert args.chains == 1

    def test_engine_flags_parse(self):
        args = build_parser().parse_args(
            ["fit", "world.json", "--engine", "vectorized", "--chains", "4"]
        )
        assert args.engine == "vectorized"
        assert args.chains == 4

    def test_engine_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "world.json", "--engine", "gpu"])

    @pytest.mark.parametrize("command", ["fit", "evaluate", "reproduce"])
    def test_help_mentions_engine_knobs(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--help"])
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "--chains" in out
        assert "vectorized" in out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "model.mlp.npz"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.cache_size == 1024

    def test_predict_flags(self):
        args = build_parser().parse_args(
            ["predict", "model.mlp.npz", "--users", "1", "2", "--top-k", "5"]
        )
        assert args.users == [1, 2]
        assert args.top_k == 5

    def test_fit_save_artifact_flag(self):
        args = build_parser().parse_args(
            ["fit", "world.json", "--save-artifact", "m.mlp.npz"]
        )
        assert str(args.save_artifact) == "m.mlp.npz"


class TestGenerate:
    def test_writes_loadable_dataset(self, saved_world):
        from repro.data.io import load_dataset

        ds = load_dataset(saved_world)
        assert ds.n_users == 120

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", str(a), "--users", "50", "--seed", "9"])
        main(["generate", str(b), "--users", "50", "--seed", "9"])
        assert a.read_text() == b.read_text()

    def test_render_tweets_flag(self, tmp_path):
        path = tmp_path / "t.json"
        main(["generate", str(path), "--users", "30", "--render-tweets"])
        from repro.data.io import load_dataset

        assert load_dataset(path).tweets


class TestInfo:
    def test_prints_runtime_versions(self, capsys):
        import numpy as np

        import repro
        from repro.serving.artifacts import ARTIFACT_VERSION

        rc = main(["info"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == repro.__version__
        assert payload["engines"] == ["loop", "partitioned", "vectorized"]
        assert payload["numpy"] == np.__version__
        assert payload["artifact_format_version"] == ARTIFACT_VERSION
        assert payload["python"].count(".") == 2

    def test_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "info" in capsys.readouterr().out


class TestGenerateSharded:
    def test_shards_flag_writes_loadable_dataset(self, tmp_path, capsys):
        path = tmp_path / "sharded.json"
        rc = main(
            ["generate", str(path), "--users", "80", "--seed", "2",
             "--shards", "4"]
        )
        assert rc == 0
        from repro.data.io import load_dataset

        ds = load_dataset(path)
        assert ds.n_users == 80
        assert ds.has_ground_truth

    def test_shards_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", str(a), "--users", "60", "--seed", "5", "--shards", "3"])
        main(["generate", str(b), "--users", "60", "--seed", "5", "--shards", "3"])
        assert a.read_text() == b.read_text()

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "x.json", "--shards", "0"]
            )


class TestStats:
    def test_prints_json(self, saved_world, capsys):
        rc = main(["stats", str(saved_world)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["users"] == 120
        assert "mean_friends" in payload


class TestFit:
    def test_prints_profiles(self, saved_world, capsys):
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fitted law" in out
        assert "user " in out

    def test_explicit_users(self, saved_world, capsys):
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
                "--users",
                "0",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "user 0:" in out
        assert "user 1:" in out

    def test_vectorized_engine_matches_loop(self, saved_world, capsys):
        """Same seed, either engine: identical printed profiles."""
        outputs = []
        for engine in ("loop", "vectorized"):
            rc = main(
                [
                    "fit",
                    str(saved_world),
                    "--iterations",
                    "6",
                    "--burn-in",
                    "2",
                    "--engine",
                    engine,
                ]
            )
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_multi_chain_reports_r_hat(self, saved_world, capsys):
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "5",
                "--burn-in",
                "2",
                "--engine",
                "vectorized",
                "--chains",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "R-hat" in out

    def test_out_of_range_user_warns(self, saved_world, capsys):
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
                "--users",
                "99999",
            ]
        )
        assert rc == 0
        assert "not in dataset" in capsys.readouterr().err


class TestServingCommands:
    @pytest.fixture(scope="class")
    def artifact(self, saved_world, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifact") / "model.mlp.npz"
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
                "--save-artifact",
                str(path),
            ]
        )
        assert rc == 0
        return path

    def test_fit_save_artifact_writes_file(self, artifact, capsys):
        assert artifact.exists()
        from repro.serving.artifacts import artifact_metadata

        assert artifact_metadata(artifact)["n_users"] == 120

    def test_predict_training_users(self, artifact, capsys):
        rc = main(["predict", str(artifact), "--users", "0", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["predictions"]) == 2
        assert all("home_name" in p for p in payload["predictions"])

    def test_predict_requests_file(self, artifact, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"friends": [0, 1]}]))
        out = tmp_path / "out.json"
        rc = main(
            [
                "predict",
                str(artifact),
                "--requests",
                str(requests),
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["predictions"][0]["request"] == {"friends": [0, 1]}

    def test_predict_without_inputs_errors(self, artifact, capsys):
        rc = main(["predict", str(artifact)])
        assert rc == 2
        assert "nothing to score" in capsys.readouterr().err

    def test_predict_bad_request_errors(self, artifact, capsys):
        rc = main(["predict", str(artifact), "--users", "99999"])
        assert rc == 2
        assert "99999" in capsys.readouterr().err

    def test_predict_matches_fit_profile_for_labeled_user(
        self, artifact, capsys
    ):
        """fit -> save -> predict reproduces the fitted home downstream."""
        from repro.serving.artifacts import load_result

        result = load_result(artifact)
        labeled = result.dataset.labeled_user_ids[0]
        rc = main(["predict", str(artifact), "--users", str(labeled)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert (
            payload["predictions"][0]["home"]
            == result.predicted_home(labeled)
        )

    def test_predict_bulk_jsonl(self, artifact, tmp_path, capsys):
        """--input specs.jsonl --output preds.jsonl round-trips JSONL."""
        specs = tmp_path / "specs.jsonl"
        specs.write_text(
            '{"user_id": 0}\n\n{"friends": [0, 1]}\n'  # blank line ok
        )
        out = tmp_path / "preds.jsonl"
        rc = main(
            ["predict", str(artifact), "--input", str(specs), "-o", str(out)]
        )
        assert rc == 0
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert len(records) == 2
        assert records[0]["request"] == {"user_id": 0}
        assert all("home" in r and "converged" in r for r in records)

    def test_predict_bulk_missing_input_keeps_output(
        self, artifact, tmp_path, capsys
    ):
        """A typo'd --input must not truncate an existing output file."""
        out = tmp_path / "preds.jsonl"
        out.write_text("precious previous predictions\n")
        rc = main(
            [
                "predict",
                str(artifact),
                "--input",
                str(tmp_path / "nope.jsonl"),
                "-o",
                str(out),
            ]
        )
        assert rc == 2
        assert "cannot read --input" in capsys.readouterr().err
        assert out.read_text() == "precious previous predictions\n"

    def test_predict_bulk_excludes_other_modes(
        self, artifact, tmp_path, capsys
    ):
        specs = tmp_path / "specs.jsonl"
        specs.write_text('{"user_id": 0}\n')
        rc = main(
            ["predict", str(artifact), "--input", str(specs), "--users", "1"]
        )
        assert rc == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestEvaluate:
    def test_prints_table2(self, saved_world, capsys):
        rc = main(
            [
                "evaluate",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        for name in ("BaseU", "BaseC", "MLP"):
            assert name in out


class TestIngestCommand:
    @pytest.fixture(scope="class")
    def artifact(self, saved_world, tmp_path_factory):
        path = tmp_path_factory.mktemp("ingest-artifact") / "model.mlp.npz"
        rc = main(
            [
                "fit",
                str(saved_world),
                "--iterations",
                "6",
                "--burn-in",
                "2",
                "--save-artifact",
                str(path),
            ]
        )
        assert rc == 0
        return path

    def test_ingest_streams_deltas(self, artifact, tmp_path, capsys):
        deltas = tmp_path / "deltas.jsonl"
        deltas.write_text(
            '{"new_users": [{"observed_location": 2}], "edges": [[0, 3]]}\n'
            "\n"  # blank lines are skipped
            '{"labels": {"1": 5}}\n'
        )
        rc = main(["ingest", str(artifact), "--input", str(deltas)])
        assert rc == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [entry["generation"] for entry in lines] == [1, 2]
        assert lines[0]["new_users"] == 1
        assert lines[1]["label_updates"] == 1
        assert lines[0]["world_hash"] != lines[1]["world_hash"]

    def test_ingest_rescores_affected(self, artifact, tmp_path, capsys):
        deltas = tmp_path / "deltas.jsonl"
        # Touch user 0 (an edge) so the rescore set is non-deterministic
        # only in content, not in mechanics.
        deltas.write_text('{"edges": [[0, 2], [4, 0]]}\n')
        out = tmp_path / "rescored.jsonl"
        rc = main(
            [
                "ingest",
                str(artifact),
                "--input",
                str(deltas),
                "--score-output",
                str(out),
            ]
        )
        assert rc == 0
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert all("user_id" in r and "home" in r for r in records)

    def test_ingest_bad_delta_fails_cleanly(self, artifact, tmp_path, capsys):
        deltas = tmp_path / "bad.jsonl"
        deltas.write_text('{"edges": [[0, 999999]]}\n')
        rc = main(["ingest", str(artifact), "--input", str(deltas)])
        assert rc == 2
        assert "bad delta on line 1" in capsys.readouterr().err

    def test_ingest_malformed_delta_shape_fails_cleanly(
        self, artifact, tmp_path, capsys
    ):
        deltas = tmp_path / "shape.jsonl"
        deltas.write_text('{"edges": [5]}\n')
        rc = main(["ingest", str(artifact), "--input", str(deltas)])
        assert rc == 2
        assert "bad delta on line 1" in capsys.readouterr().err

    def test_ingest_empty_input_still_writes_score_output(
        self, artifact, tmp_path, capsys
    ):
        deltas = tmp_path / "empty.jsonl"
        deltas.write_text("\n")
        out = tmp_path / "rescored.jsonl"
        rc = main(
            [
                "ingest",
                str(artifact),
                "--input",
                str(deltas),
                "--score-output",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert out.read_text() == ""

    def test_ingest_missing_input(self, artifact, tmp_path, capsys):
        rc = main(
            ["ingest", str(artifact), "--input", str(tmp_path / "nope.jsonl")]
        )
        assert rc == 2
        assert "cannot read --input" in capsys.readouterr().err
