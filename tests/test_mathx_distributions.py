"""Unit tests for distribution helpers."""

import numpy as np
import pytest

from repro.mathx.distributions import (
    entropy,
    log_normalize,
    sample_categorical,
    sample_categorical_logits,
    sample_dirichlet,
    top_k_indices,
)


class TestSampleCategorical:
    def test_deterministic_for_point_mass(self, rng):
        w = np.array([0.0, 0.0, 5.0, 0.0])
        assert all(sample_categorical(rng, w) == 2 for _ in range(20))

    def test_frequencies_match_weights(self, rng):
        w = np.array([1.0, 3.0])
        draws = [sample_categorical(rng, w) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.75, abs=0.03)

    def test_rejects_all_zero(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, np.zeros(3))

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, np.array([1.0, -0.1]))

    def test_rejects_nan(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, np.array([1.0, np.nan]))

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, np.array([]))

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, np.ones((2, 2)))


class TestSampleCategoricalLogits:
    def test_matches_exp_weights(self, rng):
        logits = np.array([0.0, np.log(3.0)])
        draws = [sample_categorical_logits(rng, logits) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.75, abs=0.03)

    def test_handles_large_logits(self, rng):
        logits = np.array([1000.0, 999.0])
        # Must not overflow; index 0 is ~2.7x likelier.
        draws = [sample_categorical_logits(rng, logits) for _ in range(100)]
        assert 0 in draws


class TestSampleDirichlet:
    def test_sums_to_one(self, rng):
        draw = sample_dirichlet(rng, np.array([0.1, 0.1, 0.1]))
        assert draw.sum() == pytest.approx(1.0)

    def test_no_exact_zeros_for_tiny_alpha(self, rng):
        for _ in range(50):
            draw = sample_dirichlet(rng, np.full(5, 0.01))
            assert np.all(draw > 0)

    def test_rejects_nonpositive_alpha(self, rng):
        with pytest.raises(ValueError):
            sample_dirichlet(rng, np.array([1.0, 0.0]))

    def test_concentration_shifts_mean(self, rng):
        draws = np.array(
            [sample_dirichlet(rng, np.array([10.0, 1.0])) for _ in range(500)]
        )
        assert draws[:, 0].mean() > 0.8


class TestLogNormalize:
    def test_normalizes(self):
        p = log_normalize(np.array([0.0, 0.0]))
        assert np.allclose(p, [0.5, 0.5])

    def test_shift_invariant(self):
        a = log_normalize(np.array([1.0, 2.0, 3.0]))
        b = log_normalize(np.array([1001.0, 1002.0, 1003.0]))
        assert np.allclose(a, b)

    def test_extreme_values_stable(self):
        p = log_normalize(np.array([-1e9, 0.0]))
        assert p[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(p))


class TestEntropy:
    def test_uniform_is_log_n(self):
        assert entropy(np.full(4, 0.25)) == pytest.approx(np.log(4))

    def test_point_mass_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_zero_entries_ignored(self):
        assert entropy(np.array([0.5, 0.5, 0.0])) == pytest.approx(np.log(2))


class TestTopK:
    def test_basic(self):
        assert top_k_indices(np.array([0.1, 0.5, 0.4]), 2) == [1, 2]

    def test_ties_broken_by_low_index(self):
        assert top_k_indices(np.array([0.4, 0.4, 0.2]), 2) == [0, 1]

    def test_k_larger_than_size(self):
        assert top_k_indices(np.array([0.3, 0.7]), 10) == [1, 0]

    def test_k_zero_or_negative(self):
        assert top_k_indices(np.array([1.0]), 0) == []
        assert top_k_indices(np.array([1.0]), -3) == []
