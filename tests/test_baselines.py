"""Tests for the baseline methods (BaseU, BaseC, Base, naive)."""

import numpy as np
import pytest

from repro.baselines.backstrom import BackstromBaseline, BackstromConfig
from repro.baselines.cheng import ChengBaseline, ChengConfig
from repro.baselines.home_explainer import HomeLocationExplainer
from repro.baselines.naive import MajorityNeighborBaseline, PopulationPriorBaseline
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import single_holdout_split


@pytest.fixture(scope="module")
def split(small_world):
    return single_holdout_split(small_world, 0.2, seed=1)


def holdout_accuracy(dataset, split, prediction, miles=100.0):
    preds = [prediction.home_of(u) for u in split.test_user_ids]
    return accuracy_at(dataset.gazetteer, preds, list(split.test_truth), miles)


class TestBackstrom:
    def test_labeled_users_keep_their_label(self, small_world, split):
        pred = BackstromBaseline().predict(split.train_dataset)
        for uid, loc in split.train_dataset.observed_locations.items():
            assert pred.home_of(uid) == loc

    def test_every_user_ranked(self, small_world, split):
        pred = BackstromBaseline().predict(split.train_dataset)
        assert all(pred.ranked_locations[u] for u in range(small_world.n_users))

    def test_beats_population_prior(self, small_world, split):
        bu = BackstromBaseline().predict(split.train_dataset)
        pop = PopulationPriorBaseline().predict(split.train_dataset)
        assert holdout_accuracy(small_world, split, bu) > holdout_accuracy(
            small_world, split, pop
        )

    def test_deterministic(self, small_world, split):
        a = BackstromBaseline().predict(split.train_dataset)
        b = BackstromBaseline().predict(split.train_dataset)
        assert a.ranked_locations == b.ranked_locations

    def test_more_rounds_reach_more_users(self, small_world, split):
        one = BackstromBaseline(BackstromConfig(n_rounds=1)).predict(
            split.train_dataset
        )
        # After round 1 every test user with located neighbours is
        # ranked; more rounds can only keep or extend coverage, and the
        # ranking remains well-formed.
        three = BackstromBaseline(BackstromConfig(n_rounds=3)).predict(
            split.train_dataset
        )
        assert all(three.ranked_locations[u] for u in split.test_user_ids)
        assert all(one.ranked_locations[u] for u in split.test_user_ids)


class TestCheng:
    def test_labeled_users_keep_their_label(self, small_world, split):
        pred = ChengBaseline().predict(split.train_dataset)
        for uid, loc in split.train_dataset.observed_locations.items():
            assert pred.home_of(uid) == loc

    def test_every_user_ranked(self, small_world, split):
        pred = ChengBaseline().predict(split.train_dataset)
        assert all(pred.ranked_locations[u] for u in range(small_world.n_users))

    def test_beats_population_prior(self, small_world, split):
        bc = ChengBaseline().predict(split.train_dataset)
        pop = PopulationPriorBaseline().predict(split.train_dataset)
        assert holdout_accuracy(small_world, split, bc) >= holdout_accuracy(
            small_world, split, pop
        )

    def test_focus_threshold_zero_keeps_all_words(self, small_world, split):
        loose = ChengBaseline(ChengConfig(focus_threshold=0.0, min_word_count=1))
        pred = loose.predict(split.train_dataset)
        assert all(pred.ranked_locations[u] for u in split.test_user_ids)

    def test_focus_threshold_one_rejects_most_words(self, small_world, split):
        # With an impossible focus requirement most users fall back to
        # the global prior -- predictions still exist.
        strict = ChengBaseline(ChengConfig(focus_threshold=1.01))
        pred = strict.predict(split.train_dataset)
        assert all(pred.ranked_locations[u] for u in split.test_user_ids)

    def test_smoothing_weight_zero_is_valid(self, small_world, split):
        pred = ChengBaseline(ChengConfig(smoothing_weight=0.0)).predict(
            split.train_dataset
        )
        assert all(pred.ranked_locations[u] for u in split.test_user_ids)


class TestHomeExplainer:
    def test_assignments_parallel_edges(self, small_world):
        explainer = HomeLocationExplainer.from_ground_truth(small_world)
        assignments = explainer.edge_assignments(small_world)
        assert len(assignments) == small_world.n_following

    def test_assigns_true_homes(self, small_world):
        explainer = HomeLocationExplainer.from_ground_truth(small_world)
        assignments = explainer.edge_assignments(small_world)
        e = small_world.following[0]
        assert assignments[0] == (
            small_world.users[e.follower].true_home,
            small_world.users[e.friend].true_home,
        )

    def test_accepts_mapping(self, small_world):
        homes = {u: 0 for u in range(small_world.n_users)}
        explainer = HomeLocationExplainer(homes)
        assert explainer.edge_assignments(small_world)[0] == (0, 0)

    def test_ground_truth_required(self, gazetteer):
        from repro.data.model import Dataset, User

        ds = Dataset(gazetteer, [User(0)], [], [])
        with pytest.raises(ValueError):
            HomeLocationExplainer.from_ground_truth(ds)


class TestNaiveBaselines:
    def test_population_prior_predicts_mode(self, small_world, split):
        pred = PopulationPriorBaseline().predict(split.train_dataset)
        observed = list(split.train_dataset.observed_locations.values())
        mode = np.argmax(np.bincount(observed))
        for uid in split.test_user_ids:
            assert pred.home_of(uid) == mode

    def test_neighbor_vote_every_user_ranked(self, small_world, split):
        pred = MajorityNeighborBaseline().predict(split.train_dataset)
        assert all(pred.ranked_locations[u] for u in range(small_world.n_users))

    def test_neighbor_vote_beats_population_prior(self, small_world, split):
        nv = MajorityNeighborBaseline().predict(split.train_dataset)
        pop = PopulationPriorBaseline().predict(split.train_dataset)
        assert holdout_accuracy(small_world, split, nv) > holdout_accuracy(
            small_world, split, pop
        )

    def test_backstrom_beats_neighbor_vote(self, small_world, split):
        """Sec. 2's claim: distance-aware beats distance-blind voting."""
        bu = BackstromBaseline().predict(split.train_dataset)
        nv = MajorityNeighborBaseline().predict(split.train_dataset)
        assert holdout_accuracy(small_world, split, bu) >= holdout_accuracy(
            small_world, split, nv
        )
