"""Unit tests for the text substrate (tokenizer, normalize, parser, venues)."""

import pytest

from repro.geo.us_cities import builtin_gazetteer
from repro.text.normalize import normalize_state
from repro.text.profile_parser import parse_profile_location
from repro.text.tokenizer import tokenize
from repro.text.venues import VenueExtractor


@pytest.fixture(scope="module")
def gaz():
    return builtin_gazetteer()


@pytest.fixture(scope="module")
def extractor(gaz):
    return VenueExtractor(gaz)


class TestTokenizer:
    def test_basic(self):
        assert tokenize("Good Morning Austin") == ["good", "morning", "austin"]

    def test_strips_urls(self):
        assert "http" not in " ".join(tokenize("see http://t.co/abc now"))
        assert tokenize("go www.example.com now") == ["go", "now"]

    def test_strips_mentions(self):
        assert tokenize("hey @lucy what's up") == ["hey", "whats", "up"]

    def test_keeps_hashtag_text(self):
        assert tokenize("#Austin is great") == ["austin", "is", "great"]

    def test_apostrophes_joined(self):
        assert tokenize("let's go") == ["lets", "go"]

    def test_drops_single_letters(self):
        assert tokenize("a b cd") == ["cd"]

    def test_numbers_kept(self):
        assert tokenize("route 66 forever") == ["route", "66", "forever"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("@only http://x.y") == []

    def test_punctuation_boundaries(self):
        assert tokenize("austin,texas!now") == ["austin", "texas", "now"]


class TestNormalizeState:
    def test_abbreviation_any_case(self):
        assert normalize_state("tx") == "TX"
        assert normalize_state("TX") == "TX"

    def test_full_name(self):
        assert normalize_state("Texas") == "TX"
        assert normalize_state("NEW YORK") == "NY"

    def test_dc_with_periods(self):
        assert normalize_state("D.C.") == "DC"

    def test_whitespace_tolerated(self):
        assert normalize_state("  california ") == "CA"

    def test_invalid_returns_none(self):
        assert normalize_state("my home") is None
        assert normalize_state("") is None
        assert normalize_state("ZZ") is None

    def test_multiword_state(self):
        assert normalize_state("west  virginia") == "WV"


class TestProfileParser:
    def test_city_abbrev(self, gaz):
        parsed = parse_profile_location("Los Angeles, CA", gaz)
        assert parsed.location.name == "Los Angeles, CA"

    def test_city_full_state(self, gaz):
        parsed = parse_profile_location("austin, texas", gaz)
        assert parsed.location.name == "Austin, TX"

    def test_rejects_state_only(self, gaz):
        assert parse_profile_location("CA", gaz) is None

    def test_rejects_nonsense(self, gaz):
        assert parse_profile_location("my home", gaz) is None
        assert parse_profile_location("somewhere, overtherainbow", gaz) is None

    def test_rejects_blank_and_none(self, gaz):
        assert parse_profile_location("", gaz) is None
        assert parse_profile_location(None, gaz) is None
        assert parse_profile_location("   ", gaz) is None

    def test_rejects_unknown_city(self, gaz):
        assert parse_profile_location("Atlantis, CA", gaz) is None

    def test_ambiguous_name_resolved_by_state(self, gaz):
        nj = parse_profile_location("Princeton, NJ", gaz)
        wv = parse_profile_location("Princeton, WV", gaz)
        assert nj.location.location_id != wv.location.location_id

    def test_last_comma_wins(self, gaz):
        # "City, with, commas" style: only the trailing state matters.
        parsed = parse_profile_location("Austin, TX, USA", gaz)
        assert parsed is None  # "TX, USA" is not a state

    def test_preserves_raw_text(self, gaz):
        parsed = parse_profile_location("  Austin, TX ", gaz)
        assert parsed.raw_text == "Austin, TX"


class TestVenueExtractor:
    def test_single_word_venue(self, extractor):
        venues = [m.venue for m in extractor.extract("leaving austin tomorrow")]
        assert venues == ["austin"]

    def test_multi_word_venue(self, extractor):
        venues = [m.venue for m in extractor.extract("I love Los Angeles so much")]
        assert venues == ["los angeles"]

    def test_longest_match_preferred(self, extractor):
        # "long beach" must win over any shorter token interpretation.
        venues = [m.venue for m in extractor.extract("surfing at long beach today")]
        assert "long beach" in venues

    def test_multiple_mentions(self, extractor):
        text = "from round rock to los angeles and back to austin"
        venues = [m.venue for m in extractor.extract(text)]
        assert venues == ["round rock", "los angeles", "austin"]

    def test_ambiguous_venue_single_mention(self, extractor):
        mentions = extractor.extract("visiting princeton next week")
        assert len(mentions) == 1
        assert mentions[0].venue == "princeton"

    def test_no_venues(self, extractor):
        assert extractor.extract("nothing geographic here at all") == []

    def test_hashtag_venue(self, extractor):
        venues = [m.venue for m in extractor.extract("great show #austin")]
        assert venues == ["austin"]

    def test_mention_offsets(self, extractor):
        mentions = extractor.extract("hello austin friends")
        assert mentions[0].token_start == 1
        assert mentions[0].token_end == 2

    def test_non_overlapping(self, extractor):
        # "new york" consumes both tokens; "york" alone must not re-match.
        mentions = extractor.extract("i love new york")
        assert len(mentions) == 1

    def test_extract_venue_ids_consistent(self, extractor, gaz):
        ids = extractor.extract_venue_ids("austin and los angeles")
        names = [gaz.venue_vocabulary[i] for i in ids]
        assert names == ["austin", "los angeles"]
