"""Inference server tests: live HTTP round-trips against a real socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.foldin import FoldInPredictor
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=80, seed=6))


@pytest.fixture(scope="module")
def predictor(world):
    params = MLPParams(n_iterations=10, burn_in=4, seed=0, engine="vectorized")
    result = MLPModel(params).fit(world)
    return FoldInPredictor(result, artifact_id="server-test")


@pytest.fixture(scope="module")
def base_url(predictor):
    server = make_server(predictor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload) -> tuple[int, dict]:
    return _post_raw(url, json.dumps(payload).encode("utf-8"))


def _post_raw(url: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHealthAndMetadata:
    def test_healthz(self, base_url):
        status, payload = _get(f"{base_url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["artifact"]["id"] == "server-test"
        assert set(payload["cache"]) == {
            "hits", "misses", "invalidations", "size", "max_size",
        }
        assert payload["journal"] is None
        # The handler itself is the in-flight request; its own counter
        # increment lands only after the response is written.
        assert payload["metrics"]["inflight"] >= 1

    def test_artifact_metadata(self, base_url, world):
        status, payload = _get(f"{base_url}/artifact")
        assert status == 200
        assert payload["users"] == world.n_users
        assert payload["params"]["engine"] == "vectorized"
        assert payload["fitted_law"]["alpha"] < 0

    def test_unknown_get_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base_url}/nope")
        assert excinfo.value.code == 404


class TestMethodNotAllowed:
    """Known route + wrong method -> 405 with an Allow header."""

    @pytest.mark.parametrize(
        "route", ["/predict-home", "/profile", "/explain-edge"]
    )
    def test_get_on_post_route_405(self, base_url, route):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base_url}{route}")
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"
        assert "POST" in json.loads(excinfo.value.read())["error"]

    @pytest.mark.parametrize("route", ["/healthz", "/artifact"])
    def test_post_on_get_route_405(self, base_url, route):
        status, payload = _post(f"{base_url}{route}", {"x": 1})
        assert status == 405
        assert "GET" in payload["error"]

    def test_post_on_get_route_sets_allow_header(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/healthz",
            data=b"{}",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET"

    def test_delete_on_known_route_405(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/predict-home", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"

    def test_delete_on_unknown_route_404(self, base_url):
        request = urllib.request.Request(f"{base_url}/nope", method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_unknown_post_route_still_404(self, base_url):
        status, payload = _post(f"{base_url}/nope", {"x": 1})
        assert status == 404


class TestPredictHome:
    def test_training_user(self, base_url, predictor):
        status, payload = _post(
            f"{base_url}/predict-home", {"users": [{"user_id": 3}], "top_k": 2}
        )
        assert status == 200
        (prediction,) = payload["predictions"]
        expected = predictor.predict(predictor.spec_for_training_user(3))
        assert prediction["home"] == expected.home
        assert len(prediction["profile"]) <= 2
        assert prediction["home_name"]

    def test_new_user_spec(self, base_url, world):
        labeled = list(world.labeled_user_ids[:2])
        status, payload = _post(
            f"{base_url}/predict-home",
            {"users": [{"friends": labeled}]},
        )
        assert status == 200
        (prediction,) = payload["predictions"]
        observed = {world.observed_locations[u] for u in labeled}
        assert prediction["home"] in observed

    def test_batch_and_cache_flag(self, base_url):
        request = {"users": [{"user_id": 11}, {"user_id": 12}]}
        _post(f"{base_url}/predict-home", request)
        status, payload = _post(f"{base_url}/predict-home", request)
        assert status == 200
        assert all(p["cached"] for p in payload["predictions"])

    def test_empty_users_rejected(self, base_url):
        status, payload = _post(f"{base_url}/predict-home", {"users": []})
        assert status == 400
        assert "users" in payload["error"]

    def test_unknown_neighbor_rejected(self, base_url):
        status, payload = _post(
            f"{base_url}/predict-home", {"users": [{"friends": [99999]}]}
        )
        assert status == 400
        assert "99999" in payload["error"]

    def test_invalid_json_rejected(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/predict-home", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_malformed_content_length_is_400_not_500(self, base_url):
        """Regression: 'Content-Length: abc' used to escape as a raw
        ValueError; it must come back as a clean 400 naming the header,
        with the connection closed (the body size is unknowable)."""
        import socket

        host, port = base_url.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(
                b"POST /predict-home HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: abc\r\n"
                b"\r\n"
            )
            sock.settimeout(10)
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        status_line = data.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"Content-Length" in data
        assert b"Connection: close" in data

    @pytest.mark.parametrize("header", ["1_0", "+10", "-5", "0x10", "²"])
    def test_non_digit_content_length_rejected(self, base_url, header):
        """int() quirks ('1_0' == 10, '+10') must not mis-frame bodies,
        and Unicode digits ('²'.isdigit() is True) must not slip past
        the guard only to blow up in int()."""
        import socket

        host, port = base_url.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            # Headers only: the server must answer without waiting for
            # (or reading) any body it cannot frame.
            sock.sendall(
                b"POST /predict-home HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {header}\r\n\r\n".encode()
            )
            data = b""
            while b"invalid Content-Length" not in data:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"invalid Content-Length" in data


class TestPredictBatch:
    """The bulk endpoint: a JSON array in, an array out."""

    def test_array_in_array_out(self, base_url, predictor):
        status, payload = _post(
            f"{base_url}/predict-batch", [{"user_id": 4}, {"user_id": 9}]
        )
        assert status == 200
        assert isinstance(payload, list) and len(payload) == 2
        expected = predictor.predict(predictor.spec_for_training_user(4))
        assert payload[0]["home"] == expected.home
        assert all("profile" in p and "converged" in p for p in payload)

    def test_matches_predict_home_route(self, base_url):
        users = [{"user_id": 21}, {"friends": [1, 2]}]
        _, bulk = _post(f"{base_url}/predict-batch", users)
        _, single = _post(f"{base_url}/predict-home", {"users": users})
        homes = [p["home"] for p in single["predictions"]]
        assert [p["home"] for p in bulk] == homes

    def test_object_body_rejected(self, base_url):
        status, payload = _post(
            f"{base_url}/predict-batch", {"users": [{"user_id": 1}]}
        )
        assert status == 400
        assert "array" in payload["error"]

    def test_bad_spec_rejected(self, base_url):
        status, payload = _post(
            f"{base_url}/predict-batch", [{"user_id": 99999}]
        )
        assert status == 400
        assert "99999" in payload["error"]

    def test_wrong_method_405(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base_url}/predict-batch")
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"

    def test_accepts_bodies_beyond_single_user_cap(self, base_url):
        """The bulk route takes population dumps: bodies over the 1 MiB
        single-user cap (here ~2 MiB of whitespace padding) must pass."""
        body = (b"[" + b" " * (2 << 20) + b'{"user_id": 2}]')
        request = urllib.request.Request(
            f"{base_url}/predict-batch",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            payload = json.loads(response.read())
        assert len(payload) == 1

    def test_single_user_routes_keep_the_small_cap(self, base_url):
        """predict-home still refuses oversized bodies (before reading
        them, so a plain client sees the 400 or a reset mid-send)."""
        import socket

        host, port = base_url.removeprefix("http://").split(":")
        length = 2 << 20
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(
                b"POST /predict-home HTTP/1.1\r\n"
                b"Host: test\r\n"
                + f"Content-Length: {length}\r\n\r\n".encode()
            )
            # The server answers without waiting for the body, then
            # closes; read until that close.
            data = b""
            while b"exceeds" not in data:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"exceeds" in data


class TestProfile:
    def test_stored_profile_served(self, base_url, predictor):
        status, payload = _post(
            f"{base_url}/profile", {"user_id": 5, "top_k": 3}
        )
        assert status == 200
        profile = predictor.result.profile_of(5)
        assert payload["home"] == profile.home
        served = [
            (entry["location"], entry["probability"])
            for entry in payload["profile"]
        ]
        assert tuple(served) == profile.entries[:3]

    def test_out_of_range_user_rejected(self, base_url):
        status, payload = _post(f"{base_url}/profile", {"user_id": 9999})
        assert status == 400
        assert "9999" in payload["error"]


class TestExplainEdge:
    def test_explains_training_edge(self, base_url, world):
        edge = world.following[0]
        status, payload = _post(
            f"{base_url}/explain-edge",
            {
                "user": {"user_id": edge.follower},
                "neighbor": edge.friend,
                "direction": "out",
                "top": 3,
            },
        )
        assert status == 200
        assert payload["neighbor"] == edge.friend
        assert 0.0 <= payload["noise_probability"] <= 1.0
        assert payload["pairs"]
        assert all("x_name" in pair for pair in payload["pairs"])

    def test_missing_fields_rejected(self, base_url):
        status, payload = _post(f"{base_url}/explain-edge", {"user": {}})
        assert status == 400
        assert "neighbor" in payload["error"]

    def test_unknown_post_route_404(self, base_url):
        status, payload = _post(f"{base_url}/predict", {"users": []})
        assert status == 404


class TestKeepAlive:
    def test_connection_survives_request_sequence(self, base_url):
        """Several requests over one persistent HTTP/1.1 connection."""
        import http.client

        host, port = base_url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            body = json.dumps({"users": [{"user_id": 1}]})
            for _ in range(3):
                conn.request("POST", "/predict-home", body=body)
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()

    def test_unread_body_does_not_desync_next_request(self, base_url):
        """A 404'd POST body must not be parsed as the next request."""
        import http.client

        host, port = base_url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request(
                "POST", "/nope", body=json.dumps({"users": [{"user_id": 1}]})
            )
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            # The server closed the connection rather than desync;
            # http.client transparently reconnects on the same object.
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            conn.close()


class TestConcurrency:
    def test_parallel_requests(self, base_url):
        """Threaded server: concurrent fold-ins all succeed."""
        results = []
        errors = []

        def hit(uid: int) -> None:
            try:
                status, payload = _post(
                    f"{base_url}/predict-home", {"users": [{"user_id": uid}]}
                )
                results.append((status, payload["predictions"][0]["home"]))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(uid,)) for uid in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 12
        assert all(status == 200 for status, _ in results)


class TestIngest:
    """POST /ingest: streaming world deltas into the live server.

    Runs against its own server (fresh predictor over the shared
    fitted result), so world growth never leaks into the other route
    tests' fixtures.
    """

    @pytest.fixture(scope="class")
    def live(self, predictor):
        fresh = FoldInPredictor(predictor.result, artifact_id="ingest-test")
        server = make_server(fresh, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield fresh, f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_ingest_applies_and_reports_identity(self, live):
        fresh, url = live
        users_before = fresh.world.n_users
        status, payload = _post(
            f"{url}/ingest",
            {
                "new_users": [{"observed_location": 3}, {}],
                "edges": [[users_before, 0], [1, users_before + 1]],
                "tweets": [[users_before, 2]],
                "labels": {"5": 4},
            },
        )
        assert status == 200
        assert payload["generation"] == fresh.world.generation
        assert payload["world_hash"] == fresh.world.content_hash
        assert payload["users"] == users_before + 2
        assert payload["applied"]["new_users"] == 2
        assert payload["applied"]["edges"] == 2
        assert payload["applied"]["label_updates"] == 1
        assert payload["applied"]["touched_users"] >= 3

    def test_ingested_user_is_servable_immediately(self, live):
        fresh, url = live
        uid = fresh.world.n_users - 2  # arrival from the previous test
        status, payload = _post(
            f"{url}/predict-home", {"users": [{"user_id": uid}]}
        )
        assert status == 200
        assert payload["predictions"][0]["converged"]

    def test_healthz_reports_generation(self, live):
        fresh, url = live
        status, payload = _get(f"{url}/healthz")
        assert status == 200
        assert payload["world"]["generation"] == fresh.world.generation
        assert payload["world"]["users"] == fresh.world.n_users

    def test_bad_delta_is_a_400(self, live):
        fresh, url = live
        generation = fresh.world.generation
        status, payload = _post(
            f"{url}/ingest", {"edges": [[0, 10_000_000]]}
        )
        assert status == 400
        assert "unknown user" in payload["error"]
        status, payload = _post(
            f"{url}/ingest", {"tweets": [[0, "venue-that-never-was"]]}
        )
        assert status == 400
        assert "unknown venue name" in payload["error"]
        status, payload = _post(f"{url}/ingest", {"bogus_field": 1})
        assert status == 400
        assert "unknown delta fields" in payload["error"]
        # Structurally malformed fields are clean 400s too, never a
        # dropped connection from an uncaught AttributeError/TypeError.
        status, payload = _post(f"{url}/ingest", {"labels": [1, 2]})
        assert status == 400
        assert "labels" in payload["error"]
        status, payload = _post(f"{url}/ingest", {"edges": [5]})
        assert status == 400
        assert "two-element pair" in payload["error"]
        status, payload = _post(f"{url}/ingest", {"new_users": 3})
        assert status == 400
        assert "new_users" in payload["error"]
        # Failed ingests must not advance the world.
        assert fresh.world.generation == generation

    def test_get_on_ingest_is_405(self, live):
        _, url = live
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{url}/ingest")
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"


class TestGracefulDrain:
    """SIGTERM-path regression: drain() finishes in-flight requests."""

    def test_drain_waits_for_slow_inflight_request(
        self, predictor, monkeypatch
    ):
        import time

        server = make_server(predictor, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        original = predictor.explain_edge

        def slow_explain(*args, **kwargs):
            time.sleep(0.6)
            return original(*args, **kwargs)

        monkeypatch.setattr(predictor, "explain_edge", slow_explain)
        outcome = {}

        def fire():
            outcome["response"] = _post(
                f"{url}/explain-edge",
                {"user": {"user_id": 3}, "neighbor": 7},
            )

        request_thread = threading.Thread(target=fire)
        request_thread.start()
        time.sleep(0.15)  # in flight, sleeping inside the handler
        drained = server.drain(deadline_seconds=10.0)
        request_thread.join(timeout=15)
        thread.join(timeout=5)
        assert drained is True
        status, payload = outcome["response"]
        assert status == 200
        assert payload["neighbor"] == 7
        # The listener is closed: new connections are refused.
        with pytest.raises(
            (urllib.error.URLError, ConnectionError, OSError)
        ):
            urllib.request.urlopen(f"{url}/healthz", timeout=2)

    def test_drain_reports_idle_immediately_when_quiet(self, predictor):
        server = make_server(predictor, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        assert server.drain(deadline_seconds=2.0) is True
        thread.join(timeout=5)
