"""Sanity tests for the embedded gazetteer data."""

import pytest

from repro.geo.us_cities import US_CITIES, builtin_gazetteer, synthetic_gazetteer
from repro.text.normalize import STATE_NAMES


class TestDataQuality:
    def test_has_several_hundred_cities(self):
        assert len(US_CITIES) >= 300

    def test_all_states_are_valid(self):
        for city, state, _lat, _lon, _pop in US_CITIES:
            assert state in STATE_NAMES, f"{city}, {state}"

    def test_coordinates_in_us_range(self):
        for city, state, lat, lon, _pop in US_CITIES:
            assert 18.0 < lat < 72.0, f"{city}, {state}"
            assert -165.0 < lon < -60.0, f"{city}, {state}"

    def test_populations_positive(self):
        assert all(pop > 0 for *_rest, pop in US_CITIES)

    def test_no_duplicate_city_state(self):
        keys = [(c.casefold(), s) for c, s, *_ in US_CITIES]
        assert len(keys) == len(set(keys))

    def test_paper_case_study_cities_present(self):
        gaz = builtin_gazetteer()
        for name in [
            ("Los Angeles", "CA"),
            ("Austin", "TX"),
            ("St. Louis", "MO"),
            ("Anaheim", "CA"),
            ("Nashville", "TN"),
            ("Murfreesboro", "TN"),
            ("Chicago", "IL"),
            ("New York", "NY"),
            ("San Diego", "CA"),
            ("Long Beach", "CA"),
            ("Honolulu", "HI"),
            ("Round Rock", "TX"),
            ("Franklin", "TN"),
        ]:
            assert gaz.lookup_city_state(*name) is not None, name


class TestAmbiguity:
    def test_princeton_is_ambiguous(self):
        gaz = builtin_gazetteer()
        assert len(gaz.lookup_name("Princeton")) >= 5

    def test_springfield_is_ambiguous(self):
        gaz = builtin_gazetteer()
        assert len(gaz.lookup_name("Springfield")) >= 4

    @pytest.mark.parametrize(
        "name", ["Columbus", "Columbia", "Franklin", "Athens", "Portland", "Charleston"]
    )
    def test_known_ambiguous_names(self, name):
        gaz = builtin_gazetteer()
        assert gaz.is_ambiguous(name), name


class TestKnownDistances:
    def test_la_to_nyc(self):
        gaz = builtin_gazetteer()
        la = gaz.lookup_city_state("Los Angeles", "CA")
        ny = gaz.lookup_city_state("New York", "NY")
        assert 2400 < la.distance_to(ny) < 2500

    def test_austin_to_round_rock_is_short(self):
        gaz = builtin_gazetteer()
        austin = gaz.lookup_city_state("Austin", "TX")
        rr = gaz.lookup_city_state("Round Rock", "TX")
        assert austin.distance_to(rr) < 25

    def test_la_to_santa_monica_is_short(self):
        gaz = builtin_gazetteer()
        la = gaz.lookup_city_state("Los Angeles", "CA")
        sm = gaz.lookup_city_state("Santa Monica", "CA")
        assert la.distance_to(sm) < 20


class TestBuiltinGazetteer:
    def test_deterministic_ids(self):
        a = builtin_gazetteer()
        b = builtin_gazetteer()
        assert [l.name for l in a] == [l.name for l in b]

    def test_dense_ids(self):
        gaz = builtin_gazetteer()
        assert [l.location_id for l in gaz] == list(range(len(gaz)))


class TestSyntheticGazetteer:
    def test_size(self):
        assert len(synthetic_gazetteer(50)) == 50

    def test_deterministic_by_seed(self):
        a = synthetic_gazetteer(20, seed=9)
        b = synthetic_gazetteer(20, seed=9)
        assert all(
            x.lat == y.lat and x.lon == y.lon for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = synthetic_gazetteer(20, seed=1)
        b = synthetic_gazetteer(20, seed=2)
        assert any(x.lat != y.lat for x, y in zip(a, b))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            synthetic_gazetteer(0)

    def test_populations_zipf_like(self):
        gaz = synthetic_gazetteer(10)
        pops = [l.population for l in gaz]
        assert pops[0] > pops[-1]
