"""Streaming delta tests: splice vs from-scratch recompile bit-identity.

The contract under test is the golden one of :mod:`repro.data.delta`:
applying any sequence of :class:`WorldDelta` batches to a compiled
world must produce *bit-identical arrays* to compiling the final
inputs from scratch -- across interleavings, batch compositions and
edge cases.  Everything downstream (fold-in, serving, evaluation) then
inherits exactness for free; the serving-level golden test lives in
``tests/test_serving_refresh.py``.
"""

import numpy as np
import pytest

from repro.data.columnar import (
    WORLD_ARRAY_KEYS,
    ColumnarWorld,
    StaleWorldError,
    compile_world,
)
from repro.data.delta import (
    DeltaRecord,
    WorldDelta,
    apply_delta,
    chain_hash,
    touched_since,
)
from repro.data.generator import SyntheticWorldConfig, generate_world


@pytest.fixture(scope="module")
def base_world():
    dataset = generate_world(SyntheticWorldConfig(n_users=150, seed=21))
    return compile_world(dataset)


def recompiled(world, deltas):
    """The from-scratch comparator: compile the final inputs directly."""
    observed = world.observed_location.copy()
    src, dst = [world.edge_src], [world.edge_dst]
    t_user, t_venue = [world.tweet_user], [world.tweet_venue]
    for delta in deltas:
        observed = np.concatenate([observed, delta.new_user_labels])
        observed[delta.label_users] = delta.label_locations
        src.append(delta.edge_src)
        dst.append(delta.edge_dst)
        t_user.append(delta.tweet_user)
        t_venue.append(delta.tweet_venue)
    return ColumnarWorld.from_edge_arrays(
        world.gazetteer,
        observed_location=observed,
        edge_src=np.concatenate(src),
        edge_dst=np.concatenate(dst),
        tweet_user=np.concatenate(t_user),
        tweet_venue=np.concatenate(t_venue),
    )


def assert_worlds_identical(applied, scratch):
    for key in WORLD_ARRAY_KEYS:
        a, b = getattr(applied, key), getattr(scratch, key)
        assert a.dtype == b.dtype, key
        assert np.array_equal(a, b), f"{key} differs from recompile"
    assert applied.rehash() == scratch.rehash()


def random_delta(world, rng, n_new=5, n_edges=20, n_tweets=25, n_labels=4):
    n = world.n_users
    total = n + n_new
    new_users = [
        int(rng.integers(world.n_locations)) if rng.random() < 0.7 else None
        for _ in range(n_new)
    ]
    edges = [
        (int(s), int(d))
        for s, d in zip(
            rng.integers(0, total, n_edges), rng.integers(0, total, n_edges)
        )
        if s != d
    ]
    tweets = [
        (int(rng.integers(total)), int(rng.integers(world.n_venues)))
        for _ in range(n_tweets)
    ]
    labels = {
        int(rng.integers(n)): (
            int(rng.integers(world.n_locations))
            if rng.random() < 0.7
            else None
        )
        for _ in range(n_labels)
    }
    return WorldDelta(new_users=new_users, edges=edges, tweets=tweets, labels=labels)


class TestGoldenBitIdentity:
    def test_single_mixed_delta(self, base_world, rng):
        delta = random_delta(base_world, rng)
        assert_worlds_identical(
            apply_delta(base_world, delta), recompiled(base_world, [delta])
        )

    def test_interleaved_deltas_match_one_recompile(self, base_world, rng):
        """Acceptance: N interleaved applies == one from-scratch compile."""
        current = base_world
        deltas = []
        for _ in range(6):
            delta = random_delta(current, rng)
            deltas.append(delta)
            current = apply_delta(current, delta)
        assert current.generation == 6
        assert_worlds_identical(current, recompiled(base_world, deltas))

    def test_chunking_is_invisible(self, base_world, rng):
        """One big batch and the same rows split across batches agree.

        (On arrays -- chained hashes intentionally differ per history.)
        """
        big = random_delta(base_world, rng, n_new=8, n_edges=30, n_tweets=30)
        one = apply_delta(base_world, big)
        n = base_world.n_users
        first = WorldDelta(
            new_users=[
                None if loc < 0 else int(loc)
                for loc in big.new_user_labels[:4]
            ],
            edges=[
                (int(s), int(d))
                for s, d in zip(big.edge_src, big.edge_dst)
                if s < n + 4 and d < n + 4
            ],
        )
        rest_edges = [
            (int(s), int(d))
            for s, d in zip(big.edge_src, big.edge_dst)
            if not (s < n + 4 and d < n + 4)
        ]
        second = WorldDelta(
            new_users=[
                None if loc < 0 else int(loc)
                for loc in big.new_user_labels[4:]
            ],
            edges=rest_edges,
            tweets=list(zip(big.tweet_user.tolist(), big.tweet_venue.tolist())),
            labels={
                int(u): (None if loc < 0 else int(loc))
                for u, loc in zip(big.label_users, big.label_locations)
            },
        )
        split = apply_delta(apply_delta(base_world, first), second)
        # Edge *order* differs between the two splits, so the arenas
        # and CSR rows legitimately differ -- but every derived
        # per-user set (candidacy, neighbourhoods) must agree.
        assert np.array_equal(one.cand_indptr, split.cand_indptr)
        assert np.array_equal(one.cand_indices, split.cand_indices)
        assert np.array_equal(one.nbr_indptr, split.nbr_indptr)
        assert np.array_equal(one.nbr_indices, split.nbr_indices)
        assert np.array_equal(one.observed_location, split.observed_location)
        assert np.array_equal(
            one.venue_mention_counts, split.venue_mention_counts
        )

    def test_base_world_arrays_unchanged(self, base_world, rng):
        """Applies never mutate the parent world (prefix views stay valid)."""
        before = {
            key: getattr(base_world, key).copy() for key in WORLD_ARRAY_KEYS
        }
        current = base_world
        for _ in range(3):
            current = apply_delta(current, random_delta(current, rng))
        for key in WORLD_ARRAY_KEYS:
            assert np.array_equal(getattr(base_world, key), before[key]), key

    def test_branching_from_one_parent(self, base_world, rng):
        """Two deltas applied to the same parent don't corrupt each other."""
        d1 = random_delta(base_world, rng)
        d2 = random_delta(base_world, rng)
        w1 = apply_delta(base_world, d1)
        w2 = apply_delta(base_world, d2)
        assert_worlds_identical(w1, recompiled(base_world, [d1]))
        assert_worlds_identical(w2, recompiled(base_world, [d2]))


class TestEdgeCases:
    def test_empty_delta(self, base_world):
        world = apply_delta(base_world, WorldDelta())
        assert world.generation == base_world.generation + 1
        assert world.content_hash != base_world.content_hash
        # No copies: every array is shared with the parent.
        for key in WORLD_ARRAY_KEYS:
            assert getattr(world, key) is getattr(base_world, key), key
        assert world.delta_log[-1].touched_users.size == 0

    def test_duplicate_edges_kept_as_multiset(self, base_world):
        """Following relationships are a multiset: duplicates count."""
        delta = WorldDelta(edges=[(3, 7), (3, 7), (3, 7)])
        applied = apply_delta(base_world, delta)
        assert_worlds_identical(applied, recompiled(base_world, [delta]))
        row = applied.friends_of(3).tolist()
        assert row.count(7) == base_world.friends_of(3).tolist().count(7) + 3

    def test_duplicate_label_updates_last_wins(self, base_world):
        """labels is a mapping: one update per user per batch, by design."""
        delta = WorldDelta(labels={9: 3})
        merged = WorldDelta(labels={**{9: 1}, **{9: 3}})
        assert merged.n_label_updates == 1
        assert_worlds_identical(
            apply_delta(base_world, merged),
            apply_delta(base_world, delta),
        )

    def test_edge_to_unknown_user_rejected(self, base_world):
        n = base_world.n_users
        with pytest.raises(ValueError, match="unknown user"):
            apply_delta(base_world, WorldDelta(edges=[(0, n + 1)]))
        with pytest.raises(ValueError, match="unknown user"):
            apply_delta(base_world, WorldDelta(tweets=[(n, 0)]))
        # One new user makes id n valid but n+1 still unknown.
        with pytest.raises(ValueError, match="unknown user"):
            apply_delta(
                base_world, WorldDelta(new_users=[None], edges=[(n + 1, 0)])
            )

    def test_self_follow_rejected(self, base_world):
        with pytest.raises(ValueError, match="self-follow"):
            apply_delta(base_world, WorldDelta(edges=[(4, 4)]))

    def test_unknown_venue_and_location_rejected(self, base_world):
        with pytest.raises(ValueError, match="venue"):
            apply_delta(
                base_world, WorldDelta(tweets=[(0, base_world.n_venues)])
            )
        with pytest.raises(ValueError, match="location"):
            apply_delta(
                base_world,
                WorldDelta(new_users=[base_world.n_locations]),
            )
        with pytest.raises(ValueError, match="location"):
            apply_delta(
                base_world, WorldDelta(labels={0: base_world.n_locations})
            )

    def test_unseen_venue_string_rejected_in_payload(self, base_world):
        with pytest.raises(ValueError, match="unknown venue name"):
            WorldDelta.from_payload(
                {"tweets": [[0, "atlantis-under-the-sea"]]},
                gazetteer=base_world.gazetteer,
            )

    def test_delta_on_world_with_zero_edges(self, base_world):
        gaz = base_world.gazetteer
        empty = ColumnarWorld.from_edge_arrays(
            gaz,
            observed_location=np.array([2, -1, 7], dtype=np.int64),
            edge_src=np.empty(0, dtype=np.int64),
            edge_dst=np.empty(0, dtype=np.int64),
            tweet_user=np.empty(0, dtype=np.int64),
            tweet_venue=np.empty(0, dtype=np.int64),
        )
        delta = WorldDelta(
            new_users=[4], edges=[(0, 1), (3, 2)], tweets=[(1, 5)]
        )
        assert_worlds_identical(
            apply_delta(empty, delta), recompiled(empty, [delta])
        )

    def test_label_update_reaches_neighbour_candidacy(self, base_world):
        """Relabeling u must update every neighbour's candidate set."""
        # Find a user with at least one neighbour.
        uid = next(
            u
            for u in range(base_world.n_users)
            if base_world.neighbors_of(u).size
        )
        new_loc = int(base_world.n_locations - 1)
        delta = WorldDelta(labels={uid: new_loc})
        applied = apply_delta(base_world, delta)
        assert_worlds_identical(applied, recompiled(base_world, [delta]))
        for nb in applied.neighbors_of(uid).tolist():
            assert new_loc in applied.candidates_of(nb).tolist()

    def test_label_removal(self, base_world, rng):
        labeled = int(np.flatnonzero(base_world.labeled_mask)[0])
        delta = WorldDelta(labels={labeled: None})
        applied = apply_delta(base_world, delta)
        assert applied.observed_location[labeled] == -1
        assert_worlds_identical(applied, recompiled(base_world, [delta]))


class TestDeltaObject:
    def test_payload_round_trip(self, base_world):
        delta = WorldDelta(
            new_users=[3, None],
            edges=[(0, 5)],
            tweets=[(1, 2)],
            labels={4: 9, 6: None},
        )
        clone = WorldDelta.from_payload(
            delta.to_payload(), gazetteer=base_world.gazetteer
        )
        assert clone.digest() == delta.digest()

    def test_venue_names_resolve(self, base_world):
        gaz = base_world.gazetteer
        name = gaz.venue_vocabulary[3]
        delta = WorldDelta.from_payload(
            {"tweets": [[0, name]]}, gazetteer=gaz
        )
        assert delta.tweet_venue.tolist() == [3]

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValueError, match="unknown delta fields"):
            WorldDelta.from_payload({"edgez": []})

    def test_digest_is_content_addressed(self):
        a = WorldDelta(edges=[(1, 2)])
        b = WorldDelta(edges=[(1, 2)])
        c = WorldDelta(edges=[(2, 1)])
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_chain_hash_is_order_sensitive(self):
        assert chain_hash("aa", "bb") != chain_hash("bb", "aa")


class TestGenerationBookkeeping:
    def test_delta_log_and_touched_since(self, base_world, rng):
        current = base_world
        d1 = WorldDelta(edges=[(1, 2)])
        d2 = WorldDelta(tweets=[(5, 0)])
        current = apply_delta(apply_delta(current, d1), d2)
        assert [r.generation for r in current.delta_log] == [1, 2]
        assert isinstance(current.delta_log[0], DeltaRecord)
        assert touched_since(current, 0).tolist() == sorted({1, 2, 5})
        assert touched_since(current, 1).tolist() == [5]
        assert touched_since(current, 2).size == 0

    def test_delta_log_is_bounded(self, base_world, monkeypatch):
        """Streaming forever must not grow the log without bound; a
        consumer behind the retained window gets a loud error, never a
        silently incomplete touched set."""
        import repro.data.delta as delta_mod

        monkeypatch.setattr(delta_mod, "DELTA_LOG_LIMIT", 3)
        current = base_world
        for i in range(5):
            current = apply_delta(current, WorldDelta(edges=[(i, i + 1)]))
        assert [r.generation for r in current.delta_log] == [3, 4, 5]
        assert touched_since(current, 2).tolist() == [2, 3, 4, 5]
        assert touched_since(current, 5).size == 0
        with pytest.raises(ValueError, match="full re-score"):
            touched_since(current, 1)

    def test_touched_since_negative_generation_on_base_world(self, base_world):
        assert touched_since(base_world, -5).size == 0

    def test_content_hash_chains_deterministically(self, base_world):
        delta = WorldDelta(edges=[(1, 2)])
        a = apply_delta(base_world, delta)
        b = apply_delta(base_world, delta)
        assert a.content_hash == b.content_hash
        assert a.content_hash == chain_hash(
            base_world.content_hash, delta.digest()
        )

    def test_pickle_round_trip_keeps_generation(self, base_world):
        import pickle

        applied = apply_delta(base_world, WorldDelta(edges=[(1, 2)]))
        clone = pickle.loads(pickle.dumps(applied))
        assert clone.generation == 1
        assert clone.content_hash == applied.content_hash
        assert clone.delta_log[-1].touched_users.tolist() == [1, 2]


class TestStaleMemoDetection:
    def test_in_place_mutation_raises(self):
        dataset = generate_world(SyntheticWorldConfig(n_users=40, seed=3))
        compile_world(dataset)
        dataset.following = dataset.following[:-5]
        with pytest.raises(StaleWorldError, match="mutated in place"):
            compile_world(dataset)

    def test_untouched_dataset_still_memoized(self):
        dataset = generate_world(SyntheticWorldConfig(n_users=40, seed=4))
        assert compile_world(dataset) is compile_world(dataset)
