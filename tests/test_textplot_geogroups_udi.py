"""Tests for the extensions: text plots, geo-group scoring, BaseUDI."""

import numpy as np
import pytest

from repro.baselines.udi import UDIConfig, UnifiedInfluenceBaseline
from repro.evaluation.geo_groups import (
    mean_grouping_score,
    score_grouping,
    true_geo_groups,
)
from repro.evaluation.metrics import accuracy_at
from repro.evaluation.splits import single_holdout_split
from repro.experiments.textplot import multi_scatter, scatter


class TestScatter:
    def test_contains_markers(self):
        text = scatter([1, 2, 3], [1, 4, 9])
        assert "*" in text

    def test_log_log_power_law_is_straight(self):
        """A power law plotted log-log occupies a thin diagonal band."""
        x = np.logspace(0, 3, 30)
        y = 0.01 * x**-0.8
        text = scatter(list(x), list(y), log_x=True, log_y=True, width=40, height=12)
        rows = [
            (r, line.index("*"))
            for r, line in enumerate(text.splitlines())
            if "*" in line
        ]
        cols = [c for _, c in rows]
        # Strictly increasing columns as rows descend = monotone line.
        assert cols == sorted(cols)

    def test_title_and_labels(self):
        text = scatter([1], [1], title="T", x_label="miles", y_label="p")
        assert "T" in text
        assert "x: miles" in text
        assert "y: p" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scatter([0.0, 1.0], [1.0, 1.0], log_x=True)

    def test_constant_series(self):
        text = scatter([1, 2, 3], [5, 5, 5])
        assert "*" in text


class TestMultiScatter:
    def test_legend_lists_series(self):
        text = multi_scatter(
            {"MLP": ([1, 2], [0.5, 0.6]), "BaseU": ([1, 2], [0.3, 0.4])}
        )
        assert "legend:" in text
        assert "MLP" in text and "BaseU" in text

    def test_distinct_markers(self):
        text = multi_scatter(
            {"a": ([1.0], [1.0]), "b": ([2.0], [2.0])}
        )
        assert "*" in text and "o" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            multi_scatter({})

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            multi_scatter({"a": ([1], [1])}, width=2, height=2)

    def test_rejects_mismatched_series(self):
        with pytest.raises(ValueError):
            multi_scatter({"a": ([1, 2], [1])})


class TestTrueGeoGroups:
    def test_groups_cover_location_based_followers(self, small_world):
        uid = max(
            range(small_world.n_users),
            key=lambda u: len(small_world.followers_of[u]),
        )
        groups = true_geo_groups(small_world, uid)
        grouped = {f for members in groups.values() for f in members}
        expected = {
            e.follower
            for e in small_world.following
            if e.friend == uid and e.true_y is not None
        }
        assert grouped == expected

    def test_nearby_assignments_merge(self, small_world):
        uid = max(
            range(small_world.n_users),
            key=lambda u: len(small_world.followers_of[u]),
        )
        groups = true_geo_groups(small_world, uid, radius_miles=100.0)
        gaz = small_world.gazetteer
        keys = list(groups)
        for a, b in zip(keys, keys[1:]):
            assert gaz.distance(a, b) > 0  # distinct group anchors


class TestScoreGrouping:
    def test_perfect_grouping(self):
        truth = {0: [1, 2], 5: [3]}
        score = score_grouping(truth, truth)
        assert score.purity == 1.0
        assert score.pairwise_f1 == 1.0

    def test_everything_in_one_group(self):
        truth = {0: [1, 2], 5: [3, 4]}
        predicted = {0: [1, 2, 3, 4]}
        score = score_grouping(predicted, truth)
        assert score.purity == 0.5
        assert score.pairwise_recall == 1.0
        assert score.pairwise_precision < 1.0

    def test_oversplit_grouping(self):
        truth = {0: [1, 2, 3, 4]}
        predicted = {0: [1, 2], 9: [3, 4]}
        score = score_grouping(predicted, truth)
        assert score.purity == 1.0
        assert score.pairwise_precision == 1.0
        assert score.pairwise_recall < 1.0

    def test_no_shared_followers_raises(self):
        with pytest.raises(ValueError):
            score_grouping({0: [1]}, {0: [2]})


class TestMeanGroupingScore:
    def test_mlp_groups_score_well(self, fitted_result, small_world):
        top_users = sorted(
            range(small_world.n_users),
            key=lambda u: -len(small_world.followers_of[u]),
        )[:10]
        predicted = {
            uid: fitted_result.geo_groups(uid) for uid in top_users
        }
        score = mean_grouping_score(small_world, predicted)
        assert score.purity > 0.5
        assert 0.0 <= score.pairwise_f1 <= 1.0

    def test_requires_enough_followers(self, small_world):
        with pytest.raises(ValueError):
            mean_grouping_score(small_world, {0: {0: [1]}}, min_followers=999)


class TestUnifiedInfluenceBaseline:
    @pytest.fixture(scope="class")
    def split(self, small_world):
        return single_holdout_split(small_world, 0.2, seed=1)

    def test_labeled_users_keep_label(self, split):
        pred = UnifiedInfluenceBaseline().predict(split.train_dataset)
        for uid, loc in split.train_dataset.observed_locations.items():
            assert pred.home_of(uid) == loc

    def test_every_user_ranked(self, small_world, split):
        pred = UnifiedInfluenceBaseline().predict(split.train_dataset)
        assert all(
            pred.ranked_locations[u] for u in range(small_world.n_users)
        )

    def test_beats_single_signal_baselines(self, small_world, split):
        """Unifying both signals should at least match network-only."""
        from repro.baselines.backstrom import BackstromBaseline

        udi = UnifiedInfluenceBaseline().predict(split.train_dataset)
        bu = BackstromBaseline().predict(split.train_dataset)
        gaz = small_world.gazetteer
        truth = list(split.test_truth)
        acc_udi = accuracy_at(
            gaz, [udi.home_of(u) for u in split.test_user_ids], truth
        )
        acc_bu = accuracy_at(
            gaz, [bu.home_of(u) for u in split.test_user_ids], truth
        )
        assert acc_udi >= acc_bu - 0.05

    def test_deterministic(self, split):
        a = UnifiedInfluenceBaseline().predict(split.train_dataset)
        b = UnifiedInfluenceBaseline().predict(split.train_dataset)
        assert a.ranked_locations == b.ranked_locations

    def test_content_weight_zero_reduces_to_network(self, split):
        pred = UnifiedInfluenceBaseline(
            UDIConfig(content_weight=0.0)
        ).predict(split.train_dataset)
        assert all(r for r in pred.ranked_locations)
