"""Unit tests for MLPParams validation."""

import pytest

from repro.core.params import MLPParams


class TestValidation:
    def test_defaults_valid(self):
        MLPParams()

    def test_rejects_positive_alpha(self):
        with pytest.raises(ValueError):
            MLPParams(alpha=0.1)

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            MLPParams(beta=0.0)

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            MLPParams(rho_f=1.0)
        with pytest.raises(ValueError):
            MLPParams(rho_t=-0.1)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            MLPParams(tau=0.0)

    def test_rejects_negative_boost(self):
        with pytest.raises(ValueError):
            MLPParams(boost=-1.0)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            MLPParams(delta=0.0)

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            MLPParams(n_iterations=0)
        with pytest.raises(ValueError):
            MLPParams(n_iterations=10, burn_in=10)
        with pytest.raises(ValueError):
            MLPParams(n_iterations=10, burn_in=-1)

    def test_rejects_negative_em_rounds(self):
        with pytest.raises(ValueError):
            MLPParams(em_rounds=-1)

    def test_rejects_disabling_both_sources(self):
        with pytest.raises(ValueError):
            MLPParams(use_following=False, use_tweeting=False)

    def test_rejects_nonpositive_min_distance(self):
        with pytest.raises(ValueError):
            MLPParams(min_distance_miles=0.0)


class TestOverrides:
    def test_with_overrides_returns_new(self):
        base = MLPParams()
        derived = base.with_overrides(seed=99)
        assert derived.seed == 99
        assert base.seed == 0

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            MLPParams().with_overrides(alpha=1.0)


class TestVariants:
    def test_mlp_u(self):
        from repro.core.model import mlp_u_params

        p = mlp_u_params()
        assert p.use_following and not p.use_tweeting

    def test_mlp_c(self):
        from repro.core.model import mlp_c_params

        p = mlp_c_params()
        assert p.use_tweeting and not p.use_following

    def test_variants_inherit_base(self):
        from repro.core.model import mlp_u_params

        base = MLPParams(seed=42, n_iterations=7, burn_in=2)
        p = mlp_u_params(base)
        assert p.seed == 42 and p.n_iterations == 7
