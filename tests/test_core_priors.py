"""Unit tests for candidacy vectors and gamma priors (Sec. 4.3)."""

import numpy as np
import pytest

from repro.core.params import MLPParams
from repro.core.priors import (
    build_user_priors,
    candidate_locations_for,
    venue_referent_map,
)
from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def gaz():
    return Gazetteer(
        [
            Location(0, "Alpha", "CA", 34.0, -118.0, 500),
            Location(1, "Beta", "TX", 30.0, -97.0, 400),
            Location(2, "Twin", "NJ", 40.3, -74.6, 300),
            Location(3, "Twin", "WV", 37.3, -81.1, 200),
        ]
    )


@pytest.fixture()
def dataset(gaz):
    twin_vid = list(gaz.venue_vocabulary).index("twin")
    users = [
        User(0, registered_location=0),  # labeled
        User(1),                          # unlabeled, has neighbours+venues
        User(2, registered_location=1),  # labeled
        User(3),                          # isolated
    ]
    following = [FollowingEdge(1, 0), FollowingEdge(2, 1)]
    tweeting = [TweetingEdge(1, twin_vid)]
    return Dataset(gaz, users, following, tweeting)


class TestVenueReferents:
    def test_ambiguous_venue_maps_to_all_cities(self, dataset, gaz):
        referents = venue_referent_map(dataset)
        twin_vid = list(gaz.venue_vocabulary).index("twin")
        assert set(referents[twin_vid]) == {2, 3}

    def test_unique_venue_maps_to_one(self, dataset, gaz):
        referents = venue_referent_map(dataset)
        alpha_vid = list(gaz.venue_vocabulary).index("alpha")
        assert referents[alpha_vid] == (0,)


class TestCandidateLocations:
    def test_labeled_user_includes_own_location(self, dataset):
        referents = venue_referent_map(dataset)
        cands = candidate_locations_for(dataset, 0, referents)
        assert 0 in cands

    def test_neighbours_contribute_observed_locations(self, dataset):
        referents = venue_referent_map(dataset)
        cands = candidate_locations_for(dataset, 1, referents)
        # Friend 0 registered loc 0; follower 2 registered loc 1.
        assert {0, 1} <= cands

    def test_venues_contribute_all_referents(self, dataset):
        referents = venue_referent_map(dataset)
        cands = candidate_locations_for(dataset, 1, referents)
        assert {2, 3} <= cands

    def test_following_signal_excluded_for_mlp_c(self, dataset):
        referents = venue_referent_map(dataset)
        cands = candidate_locations_for(
            dataset, 1, referents, use_following=False
        )
        assert cands == {2, 3}

    def test_tweeting_signal_excluded_for_mlp_u(self, dataset):
        referents = venue_referent_map(dataset)
        cands = candidate_locations_for(
            dataset, 1, referents, use_tweeting=False
        )
        assert cands == {0, 1}

    def test_isolated_user_has_no_candidates(self, dataset):
        referents = venue_referent_map(dataset)
        assert candidate_locations_for(dataset, 3, referents) == set()


class TestBuildUserPriors:
    def test_candidates_sorted(self, dataset):
        priors = build_user_priors(dataset, MLPParams())
        for cand in priors.candidates:
            assert np.all(np.diff(cand) > 0)

    def test_labeled_user_boosted(self, dataset):
        params = MLPParams(tau=0.1, boost=50.0)
        priors = build_user_priors(dataset, params)
        cand = priors.candidates[0]
        gamma = priors.gamma[0]
        pos = int(np.searchsorted(cand, 0))
        assert gamma[pos] == pytest.approx(50.1)

    def test_unlabeled_user_flat_tau(self, dataset):
        params = MLPParams(tau=0.1, boost=50.0)
        priors = build_user_priors(dataset, params)
        assert np.allclose(priors.gamma[1], 0.1)

    def test_gamma_sum_consistent(self, dataset):
        priors = build_user_priors(dataset, MLPParams())
        for uid in range(dataset.n_users):
            assert priors.gamma_sum[uid] == pytest.approx(
                priors.gamma[uid].sum()
            )

    def test_isolated_user_falls_back_to_full_gazetteer(self, dataset, gaz):
        priors = build_user_priors(dataset, MLPParams())
        assert priors.candidates[3].size == len(gaz)

    def test_candidate_count(self, dataset):
        priors = build_user_priors(dataset, MLPParams())
        counts = priors.candidate_count()
        assert counts[1] == 4  # {0, 1, 2, 3}

    def test_real_world_priors_cover_candidates(self, small_world):
        priors = build_user_priors(small_world, MLPParams())
        assert priors.n_users == small_world.n_users
        n_loc = len(small_world.gazetteer)
        for cand in priors.candidates:
            assert cand.size > 0
            assert cand.min() >= 0 and cand.max() < n_loc
