"""Tests for cross-validation splits and the three task runners."""

import pytest

from repro.baselines.home_explainer import HomeLocationExplainer
from repro.baselines.naive import PopulationPriorBaseline
from repro.evaluation.methods import MethodPrediction
from repro.evaluation.splits import k_fold_label_splits, single_holdout_split
from repro.evaluation.tasks import (
    evaluable_edges,
    run_explanation_task,
    run_home_prediction,
    run_multi_location_discovery,
)


class TestKFoldSplits:
    def test_every_labeled_user_tested_once(self, small_world):
        splits = k_fold_label_splits(small_world, n_folds=5, seed=0)
        tested = [u for s in splits for u in s.test_user_ids]
        assert sorted(tested) == sorted(small_world.labeled_user_ids)

    def test_test_labels_hidden_in_train(self, small_world):
        for split in k_fold_label_splits(small_world, n_folds=3, seed=0):
            observed = split.train_dataset.observed_locations
            assert all(u not in observed for u in split.test_user_ids)

    def test_truth_matches_original_labels(self, small_world):
        observed = small_world.observed_locations
        for split in k_fold_label_splits(small_world, n_folds=3, seed=0):
            for uid, truth in zip(split.test_user_ids, split.test_truth):
                assert observed[uid] == truth

    def test_seed_determinism(self, small_world):
        a = k_fold_label_splits(small_world, 4, seed=7)
        b = k_fold_label_splits(small_world, 4, seed=7)
        assert [s.test_user_ids for s in a] == [s.test_user_ids for s in b]

    def test_rejects_one_fold(self, small_world):
        with pytest.raises(ValueError):
            k_fold_label_splits(small_world, n_folds=1)

    def test_rejects_more_folds_than_labels(self, tiny_world):
        with pytest.raises(ValueError):
            k_fold_label_splits(tiny_world, n_folds=10_000)


class TestHoldoutSplit:
    def test_test_fraction_respected(self, small_world):
        split = single_holdout_split(small_world, 0.25, seed=0)
        n_labeled = len(small_world.labeled_user_ids)
        assert len(split.test_user_ids) == pytest.approx(0.25 * n_labeled, abs=1)

    def test_rejects_bad_fraction(self, small_world):
        with pytest.raises(ValueError):
            single_holdout_split(small_world, 0.0)
        with pytest.raises(ValueError):
            single_holdout_split(small_world, 1.0)


class TestHomePredictionTask:
    def test_pools_all_folds(self, small_world):
        methods = [PopulationPriorBaseline()]
        results = run_home_prediction(small_world, methods, n_folds=3, seed=0)
        r = results["PopPrior"]
        assert len(r.predictions) == len(small_world.labeled_user_ids)
        assert len(r.truths) == len(r.predictions)

    def test_accuracy_in_unit_interval(self, small_world):
        results = run_home_prediction(
            small_world, [PopulationPriorBaseline()], n_folds=2, seed=0
        )
        acc = results["PopPrior"].accuracy_at(small_world)
        assert 0.0 <= acc <= 1.0

    def test_aad_is_monotone(self, small_world):
        results = run_home_prediction(
            small_world, [PopulationPriorBaseline()], n_folds=2, seed=0
        )
        curve = results["PopPrior"].aad(small_world)
        accs = [a for _, a in curve]
        assert accs == sorted(accs)


class TestMultiLocationTask:
    def test_cohort_is_multi_location(self, small_world):
        results = run_multi_location_discovery(
            small_world, [PopulationPriorBaseline()], max_cohort=50, seed=0
        )
        r = results["PopPrior"]
        for uid in r.cohort:
            assert small_world.users[uid].is_multi_location

    def test_cohort_capped(self, small_world):
        results = run_multi_location_discovery(
            small_world, [PopulationPriorBaseline()], max_cohort=10, seed=0
        )
        assert len(results["PopPrior"].cohort) == 10

    def test_truths_are_full_location_sets(self, small_world):
        results = run_multi_location_discovery(
            small_world, [PopulationPriorBaseline()], max_cohort=20, seed=0
        )
        r = results["PopPrior"]
        for uid, truth in zip(r.cohort, r.truths):
            assert truth == list(small_world.users[uid].true_locations)

    def test_dp_dr_in_unit_interval(self, small_world):
        results = run_multi_location_discovery(
            small_world, [PopulationPriorBaseline()], max_cohort=20, seed=0
        )
        r = results["PopPrior"]
        assert 0.0 <= r.dp(small_world) <= 1.0
        assert 0.0 <= r.dr(small_world) <= 1.0

    def test_requires_ground_truth(self, gazetteer):
        from repro.data.model import Dataset, User

        ds = Dataset(gazetteer, [User(0)], [], [])
        with pytest.raises(ValueError):
            run_multi_location_discovery(ds, [PopulationPriorBaseline()])


class TestExplanationTask:
    def test_evaluable_edges_are_non_noise(self, small_world):
        edges = evaluable_edges(small_world)
        for s in edges:
            assert not small_world.following[s].is_noise

    def test_perfect_oracle_scores_one(self, small_world):
        oracle = [
            (e.true_x if e.true_x is not None else 0,
             e.true_y if e.true_y is not None else 0)
            for e in small_world.following
        ]
        results = run_explanation_task(small_world, [("oracle", oracle)])
        assert results["oracle"].accuracy_at(small_world) == 1.0

    def test_home_explainer_reasonable(self, small_world):
        base = HomeLocationExplainer.from_ground_truth(small_world)
        results = run_explanation_task(
            small_world, [("Base", base.edge_assignments(small_world))]
        )
        acc = results["Base"].accuracy_at(small_world)
        # Homes explain many but not all location-based edges.
        assert 0.3 < acc < 1.0

    def test_accuracy_curve_monotone(self, small_world):
        base = HomeLocationExplainer.from_ground_truth(small_world)
        results = run_explanation_task(
            small_world, [("Base", base.edge_assignments(small_world))]
        )
        curve = results["Base"].accuracy_curve(small_world)
        accs = [a for _, a in curve]
        assert accs == sorted(accs)

    def test_rejects_wrong_length(self, small_world):
        with pytest.raises(ValueError):
            run_explanation_task(small_world, [("bad", [(0, 0)])])


class TestMethodPrediction:
    def test_home_of_empty_raises(self):
        pred = MethodPrediction(method_name="x", ranked_locations=[[]])
        with pytest.raises(ValueError):
            pred.home_of(0)

    def test_top_k_of(self):
        pred = MethodPrediction(method_name="x", ranked_locations=[[5, 2, 9]])
        assert pred.top_k_of(0, 2) == [5, 2]
