"""Unit tests for repro.geo.coords."""

import math

import numpy as np
import pytest

from repro.geo.coords import (
    EARTH_RADIUS_MILES,
    GeoPoint,
    equirectangular_miles,
    haversine_miles,
    haversine_miles_vec,
    pairwise_distance_matrix,
)

# Reference city coordinates for known-distance checks.
LA = (34.0522, -118.2437)
NYC = (40.7128, -74.0060)
CHI = (41.8781, -87.6298)
SF = (37.7749, -122.4194)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_miles(*LA, *LA) == 0.0

    def test_la_to_nyc_is_about_2450_miles(self):
        d = haversine_miles(*LA, *NYC)
        assert 2400 < d < 2500

    def test_la_to_sf_is_about_347_miles(self):
        d = haversine_miles(*LA, *SF)
        assert 330 < d < 365

    def test_chicago_to_nyc_is_about_712_miles(self):
        d = haversine_miles(*CHI, *NYC)
        assert 690 < d < 740

    def test_symmetry(self):
        assert haversine_miles(*LA, *NYC) == pytest.approx(
            haversine_miles(*NYC, *LA)
        )

    def test_antipodal_is_half_circumference(self):
        d = haversine_miles(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_MILES, rel=1e-6)

    def test_poles(self):
        d = haversine_miles(90.0, 0.0, -90.0, 0.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_MILES, rel=1e-6)

    def test_small_distance_precision(self):
        # ~0.69 miles per 0.01 degree of latitude.
        d = haversine_miles(34.00, -118.0, 34.01, -118.0)
        assert 0.65 < d < 0.73

    def test_triangle_inequality_on_cities(self):
        d_direct = haversine_miles(*LA, *NYC)
        d_via_chi = haversine_miles(*LA, *CHI) + haversine_miles(*CHI, *NYC)
        assert d_direct <= d_via_chi + 1e-9


class TestEquirectangular:
    def test_matches_haversine_for_short_distances(self):
        exact = haversine_miles(*LA, *SF)
        approx = equirectangular_miles(*LA, *SF)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_zero(self):
        assert equirectangular_miles(*CHI, *CHI) == 0.0


class TestVectorized:
    def test_matches_scalar(self):
        lats = np.array([LA[0], NYC[0], CHI[0]])
        lons = np.array([LA[1], NYC[1], CHI[1]])
        vec = haversine_miles_vec(SF[0], SF[1], lats, lons)
        for i, (lat, lon) in enumerate(zip(lats, lons)):
            assert vec[i] == pytest.approx(
                haversine_miles(SF[0], SF[1], lat, lon), rel=1e-12
            )

    def test_clip_guards_rounding(self):
        # Identical points must not produce NaN from sqrt of negative.
        out = haversine_miles_vec(
            np.array([40.0]), np.array([-75.0]), np.array([40.0]), np.array([-75.0])
        )
        assert out[0] == 0.0


class TestPairwiseMatrix:
    def test_shape_symmetry_diagonal(self):
        lats = np.array([LA[0], NYC[0], CHI[0], SF[0]])
        lons = np.array([LA[1], NYC[1], CHI[1], SF[1]])
        mat = pairwise_distance_matrix(lats, lons)
        assert mat.shape == (4, 4)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_entries_match_scalar(self):
        lats = np.array([LA[0], NYC[0]])
        lons = np.array([LA[1], NYC[1]])
        mat = pairwise_distance_matrix(lats, lons)
        assert mat[0, 1] == pytest.approx(haversine_miles(*LA, *NYC), rel=1e-12)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            pairwise_distance_matrix(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            pairwise_distance_matrix(np.ones((2, 2)), np.ones((2, 2)))


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(34.05, -118.24)
        assert p.as_tuple() == (34.05, -118.24)

    def test_distance_to(self):
        a = GeoPoint(*LA)
        b = GeoPoint(*NYC)
        assert a.distance_to(b) == pytest.approx(haversine_miles(*LA, *NYC))

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 180.5)
        with pytest.raises(ValueError):
            GeoPoint(0.0, -181.0)

    def test_hashable_and_equal(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1
