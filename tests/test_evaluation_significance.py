"""Tests for significance testing (paired bootstrap, McNemar)."""

import numpy as np
import pytest

from repro.evaluation.significance import (
    mcnemar_test,
    paired_bootstrap,
)
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def gaz():
    return Gazetteer(
        [
            Location(0, "LA", "CA", 34.05, -118.24, 1),
            Location(1, "NYC", "NY", 40.71, -74.00, 1),
            Location(2, "CHI", "IL", 41.88, -87.63, 1),
        ]
    )


class TestPairedBootstrap:
    def test_identical_methods_not_significant(self, gaz, rng):
        n = 60
        truth = rng.integers(0, 3, size=n)
        pred = rng.integers(0, 3, size=n)
        cmp = paired_bootstrap(gaz, pred, pred, truth, seed=1)
        assert cmp.mean_gap == 0.0
        assert not cmp.significant_at_95
        assert cmp.accuracy_a == cmp.accuracy_b

    def test_dominant_method_is_significant(self, gaz, rng):
        n = 100
        truth = rng.integers(0, 3, size=n)
        perfect = truth.copy()
        # Wrong everywhere: shift every prediction to a different city.
        wrong = (truth + 1) % 3
        cmp = paired_bootstrap(gaz, perfect, wrong, truth, seed=1)
        assert cmp.accuracy_a == 1.0
        assert cmp.accuracy_b == 0.0
        assert cmp.significant_at_95
        assert cmp.p_a_beats_b == 1.0

    def test_gap_ci_contains_point_estimate(self, gaz, rng):
        n = 80
        truth = rng.integers(0, 3, size=n)
        a = np.where(rng.random(n) < 0.7, truth, (truth + 1) % 3)
        b = np.where(rng.random(n) < 0.5, truth, (truth + 1) % 3)
        cmp = paired_bootstrap(gaz, a, b, truth, seed=2)
        assert cmp.ci_low <= cmp.mean_gap <= cmp.ci_high

    def test_deterministic_by_seed(self, gaz, rng):
        n = 50
        truth = rng.integers(0, 3, size=n)
        a = rng.integers(0, 3, size=n)
        b = rng.integers(0, 3, size=n)
        c1 = paired_bootstrap(gaz, a, b, truth, seed=9)
        c2 = paired_bootstrap(gaz, a, b, truth, seed=9)
        assert c1 == c2

    def test_rejects_mismatched(self, gaz):
        with pytest.raises(ValueError):
            paired_bootstrap(gaz, [0, 1], [0], [0, 1])

    def test_rejects_empty(self, gaz):
        with pytest.raises(ValueError):
            paired_bootstrap(gaz, [], [], [])


class TestMcNemar:
    def test_no_discordance(self, gaz):
        truth = np.array([0, 1, 2])
        result = mcnemar_test(gaz, truth, truth, truth)
        assert result.p_value == 1.0
        assert result.a_right_b_wrong == 0

    def test_strong_asymmetry_is_significant(self, gaz, rng):
        n = 200
        truth = rng.integers(0, 3, size=n)
        a = truth.copy()                      # always right
        b = (truth + 1) % 3                   # always wrong
        result = mcnemar_test(gaz, a, b, truth)
        assert result.a_right_b_wrong == n
        assert result.a_wrong_b_right == 0
        assert result.p_value < 1e-6

    def test_small_sample_uses_exact_binomial(self, gaz):
        truth = np.array([0] * 6)
        a = np.array([0, 0, 0, 0, 1, 1])  # 4 right
        b = np.array([0, 0, 1, 1, 1, 1])  # 2 right
        result = mcnemar_test(gaz, a, b, truth, miles=10)
        # 2 discordant pairs both favouring A -> p = 2 * 0.25 = 0.5
        assert result.a_right_b_wrong == 2
        assert result.a_wrong_b_right == 0
        assert result.p_value == pytest.approx(0.5)

    def test_balanced_discordance_not_significant(self, gaz, rng):
        n = 100
        truth = rng.integers(0, 3, size=n)
        flip_a = rng.random(n) < 0.3
        flip_b = rng.random(n) < 0.3
        a = np.where(flip_a, (truth + 1) % 3, truth)
        b = np.where(flip_b, (truth + 1) % 3, truth)
        result = mcnemar_test(gaz, a, b, truth)
        assert result.p_value > 0.01

    def test_rejects_mismatched(self, gaz):
        with pytest.raises(ValueError):
            mcnemar_test(gaz, [0], [0, 1], [0, 1])


class TestOnRealMethods:
    def test_mlp_vs_population_prior_significant(self, small_world):
        """MLP's win over the population prior survives resampling."""
        from repro.baselines.naive import PopulationPriorBaseline
        from repro.core.model import MLPModel
        from repro.core.params import MLPParams
        from repro.evaluation.splits import single_holdout_split

        split = single_holdout_split(small_world, 0.25, seed=3)
        params = MLPParams(
            n_iterations=10, burn_in=4, seed=0, track_edge_assignments=False
        )
        mlp = MLPModel(params).fit(split.train_dataset)
        pop = PopulationPriorBaseline().predict(split.train_dataset)
        test = list(split.test_user_ids)
        cmp = paired_bootstrap(
            small_world.gazetteer,
            [mlp.predicted_home(u) for u in test],
            [pop.home_of(u) for u in test],
            list(split.test_truth),
            name_a="MLP",
            name_b="PopPrior",
            seed=0,
        )
        assert cmp.accuracy_a > cmp.accuracy_b
        assert cmp.p_a_beats_b > 0.9
