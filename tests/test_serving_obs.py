"""Serving-layer observability tests: /metrics, /healthz schema, the
access log, concurrency, the metrics CLI, and read-only guarantees.

The metrics registry is process-global, so everything here asserts
*deltas* between before/after snapshots rather than absolute values --
other test modules sharing the process may have already incremented the
same counters.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import promtext
import repro.data.journal  # noqa: F401  -- registers the journal metric families
from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import REGISTRY
from repro.serving.foldin import FoldInPredictor
from repro.serving.server import (
    HTTP_LATENCY,
    HTTP_REQUESTS,
    METRICS_CONTENT_TYPE,
    make_server,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=70, seed=9))


@pytest.fixture(scope="module")
def fitted(world):
    params = MLPParams(n_iterations=8, burn_in=3, seed=1, engine="vectorized")
    return MLPModel(params).fit(world)


@pytest.fixture(scope="module")
def access_log_stream():
    return io.StringIO()


@pytest.fixture(scope="module")
def served(fitted, access_log_stream):
    predictor = FoldInPredictor(fitted, artifact_id="obs-test")
    server = make_server(
        predictor, host="127.0.0.1", port=0, access_log=access_log_stream
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield predictor, server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture()
def base_url(served):
    return served[2]


def _get_raw(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _get_json(url: str):
    status, _, text = _get_raw(url)
    return status, json.loads(text)


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    """Poll until ``predicate()`` -- metrics and access-log lines are
    written in the handler's ``finally`` block *after* the response is
    sent, so the client can observe the response first."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _post(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestMetricsEndpoint:
    def test_content_type_and_grammar(self, base_url):
        # Generate some traffic first so families have samples.
        _post(f"{base_url}/predict-home", {"users": [{"user_id": 1}]})
        status, content_type, text = _get_raw(f"{base_url}/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        # Strict line-grammar parse; raises on any malformed line,
        # duplicate sample, or sample without a TYPE declaration.
        families = promtext.parse(text)
        assert families

    def test_covers_server_foldin_cache_and_journal(self, base_url):
        _post(f"{base_url}/predict-home", {"users": [{"user_id": 2}]})
        _, _, text = _get_raw(f"{base_url}/metrics")
        families = promtext.parse(text)
        for name in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_http_inflight_requests",
            "repro_foldin_solve_seconds",
            "repro_foldin_solves_total",
            "repro_foldin_iterations_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_journal_appends_total",
        ):
            assert name in families, f"{name} missing from /metrics"

    def test_histograms_internally_consistent(self, base_url):
        _post(f"{base_url}/predict-home", {"users": [{"user_id": 3}]})
        _, _, text = _get_raw(f"{base_url}/metrics")
        families = promtext.parse(text)
        for family in families.values():
            if family.kind == "histogram":
                promtext.assert_histogram_consistent(family)

    def test_request_counter_and_latency_increment(self, base_url):
        child = HTTP_REQUESTS.labels(
            route="/predict-home", method="POST", status="200"
        )
        latency = HTTP_LATENCY.labels(route="/predict-home")
        before_count = child.value
        before_observed = latency.count
        for _ in range(3):
            status, _ = _post(
                f"{base_url}/predict-home", {"users": [{"user_id": 4}]}
            )
            assert status == 200
        assert _wait_until(lambda: child.value == before_count + 3)
        assert _wait_until(lambda: latency.count == before_observed + 3)

    def test_errors_labeled_by_status(self, base_url):
        bad = HTTP_REQUESTS.labels(
            route="/predict-home", method="POST", status="400"
        )
        before = bad.value
        status, _ = _post(f"{base_url}/predict-home", {"users": []})
        assert status == 400
        assert _wait_until(lambda: bad.value == before + 1)

    def test_unknown_route_label_is_bounded(self, base_url):
        """Unknown paths collapse into one '<unknown>' label value, so a
        client scanning random URLs cannot explode metric cardinality."""
        for path in ("/nope", "/scan1", "/scan2"):
            with pytest.raises(urllib.error.HTTPError):
                _get_raw(f"{base_url}{path}")
        _, _, text = _get_raw(f"{base_url}/metrics")
        families = promtext.parse(text)
        routes = {
            sample.labels["route"]
            for sample in families["repro_http_requests_total"].samples
        }
        assert "<unknown>" in routes
        assert not any(route.startswith("/scan") for route in routes)
        assert not any(route == "/nope" for route in routes)


class TestHealthzSchema:
    """Regression contract: the top-level payload shape is stable."""

    TOP_LEVEL = {
        "status", "artifact", "world", "cache", "journal", "metrics",
        "serving",
    }

    def test_top_level_keys_exact(self, base_url):
        status, payload = _get_json(f"{base_url}/healthz")
        assert status == 200
        assert set(payload) == self.TOP_LEVEL

    def test_nested_shapes(self, base_url, served):
        predictor, _, _ = served
        _, payload = _get_json(f"{base_url}/healthz")
        assert payload["status"] == "ok"
        assert payload["artifact"] == {"id": "obs-test"}
        assert set(payload["world"]) == {
            "users", "generation", "following", "tweeting", "hash",
        }
        assert payload["world"]["users"] == predictor.world.n_users
        assert set(payload["cache"]) == {
            "hits", "misses", "invalidations", "size", "max_size",
        }
        assert payload["journal"] is None  # no journal attached here
        metrics = payload["metrics"]
        assert {
            "uptime_seconds",
            "requests_total",
            "errors_total",
            "inflight",
            "solves_total",
            "traces",
        } <= set(metrics)
        assert metrics["uptime_seconds"] >= 0.0
        assert metrics["inflight"] >= 1  # this very request
        assert metrics["traces"]["captured"] >= 1
        serving = payload["serving"]
        assert set(serving) == {
            "mode", "workers", "coalesce_ms", "store", "worker_info",
        }
        assert serving["mode"] == "threaded"
        assert serving["workers"] == 0
        assert serving["worker_info"] == []

    def test_payload_is_json_serializable_roundtrip(self, base_url):
        _, payload = _get_json(f"{base_url}/healthz")
        assert json.loads(json.dumps(payload)) == payload


class TestAccessLog:
    def test_one_json_line_per_request(self, base_url, access_log_stream):
        before = access_log_stream.getvalue().count("\n")
        status, _ = _post(
            f"{base_url}/predict-home", {"users": [{"user_id": 5}]}
        )
        assert status == 200
        assert _wait_until(
            lambda: access_log_stream.getvalue().count("\n") > before
        )
        lines = access_log_stream.getvalue().splitlines()
        entry = json.loads(lines[-1])
        assert set(entry) == {
            "ts", "method", "route", "path", "status", "latency_ms",
            "trace_id",
        }
        assert entry["method"] == "POST"
        assert entry["route"] == "/predict-home"
        assert entry["status"] == 200
        assert entry["latency_ms"] >= 0.0
        assert entry["trace_id"]

    def test_errors_are_logged_too(self, base_url, access_log_stream):
        status, _ = _post(f"{base_url}/predict-home", {"users": []})
        assert status == 400

        def last_entry():
            lines = access_log_stream.getvalue().splitlines()
            return json.loads(lines[-1]) if lines else None

        assert _wait_until(
            lambda: (last_entry() or {}).get("status") == 400
        )
        entry = last_entry()
        assert entry["status"] == 400
        assert entry["route"] == "/predict-home"

    def test_every_line_is_valid_json(self, access_log_stream):
        lines = access_log_stream.getvalue().splitlines()
        assert lines, "no access log lines were written"
        for line in lines:
            json.loads(line)


class TestConcurrentInstrumentation:
    """Hammer the live threaded server and check counters stay exact."""

    N_THREADS = 10
    N_REQUESTS_EACH = 5

    def test_counters_exact_under_concurrency(self, base_url):
        ok = HTTP_REQUESTS.labels(
            route="/predict-home", method="POST", status="200"
        )
        latency = HTTP_LATENCY.labels(route="/predict-home")
        before_ok = ok.value
        before_observed = latency.count
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(thread_id: int) -> None:
            try:
                barrier.wait(10)
                for i in range(self.N_REQUESTS_EACH):
                    uid = (thread_id * self.N_REQUESTS_EACH + i) % 60
                    status, _ = _post(
                        f"{base_url}/predict-home",
                        {"users": [{"user_id": uid}]},
                    )
                    assert status == 200
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = self.N_THREADS * self.N_REQUESTS_EACH
        assert _wait_until(lambda: ok.value == before_ok + total)
        assert _wait_until(lambda: latency.count == before_observed + total)
        # The exposition must still parse cleanly after the hammer.
        _, _, text = _get_raw(f"{base_url}/metrics")
        promtext.parse(text)


class TestMetricsCli:
    def test_dump(self, base_url, capsys):
        from repro.cli import main

        exit_code = main(["metrics", "--url", base_url])
        assert exit_code == 0
        out = capsys.readouterr().out
        promtext.parse(out)

    def test_grep(self, base_url, capsys):
        from repro.cli import main

        exit_code = main(
            ["metrics", "--url", base_url, "--grep", "repro_http_requests"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert out
        for line in out.splitlines():
            assert "repro_http_requests" in line

    def test_unreachable_server_is_exit_1(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["metrics", "--url", "http://127.0.0.1:9"]  # discard port
        )
        assert exit_code == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestReadOnly:
    """Observability must never change what the model computes."""

    def test_predictions_identical_with_metrics_disabled(self, fitted):
        predictor_on = FoldInPredictor(fitted, artifact_id="on")
        specs = [
            predictor_on.spec_for_training_user(uid) for uid in range(20)
        ]
        with_metrics = [predictor_on.predict(spec) for spec in specs]

        previous = obs_metrics.set_enabled(False)
        try:
            predictor_off = FoldInPredictor(fitted, artifact_id="off")
            without = [predictor_off.predict(spec) for spec in specs]
        finally:
            obs_metrics.set_enabled(previous)

        for a, b in zip(with_metrics, without):
            assert a.home == b.home
            assert a.profile == b.profile
            assert a.iterations == b.iterations

    def test_scrape_does_not_mutate_sample_values(self, base_url):
        """Rendering the exposition is a pure read of registry state."""
        _post(f"{base_url}/predict-home", {"users": [{"user_id": 6}]})
        snapshot_before = REGISTRY.snapshot()
        # Render locally (no HTTP request, which would itself count).
        obs_metrics.render_prometheus()
        assert REGISTRY.snapshot() == snapshot_before
