"""The partitioned engine: coloring, determinism, statistical equivalence.

The chromatic engine deliberately relaxes the bit-identity chain
contract, so its contract is tested in three tiers:

- **structural**: the greedy coloring is proper and deterministic, the
  layout rejects self-follow edges, count conservation holds after
  arbitrary sweeps, and the chain is a pure function of ``seed`` --
  independent of ``n_jobs`` and of chunk scheduling;
- **golden**: a world whose conflict graph is edgeless (the MLP_C
  ablation) collapses to one color, and the engine must then reproduce
  the exact vectorized chain bit-for-bit;
- **statistical**: on a seeded 5k-user world, partitioned and exact
  chains must agree as *distributions* -- Gelman-Rubin R-hat across
  mixed-engine chains near 1, predicted-home agreement above a
  documented floor, and noise-fraction posteriors within tolerance
  (the bounds live in docs/PERFORMANCE.md "Partitioned sweeps").
"""

import numpy as np
import pytest

from repro.core.convergence import trace_scale_reduction
from repro.core.model import MLPModel, mlp_c_params
from repro.core.params import MLPParams
from repro.data.columnar import ColumnarWorld
from repro.data.generator import SyntheticWorldConfig, generate_columnar_world
from repro.engine import (
    ENGINES,
    PartitionedGibbsSampler,
    VectorizedGibbsSampler,
    check_proper,
    color_users,
    make_sampler,
)
from repro.engine.partition import conflict_adjacency
from repro.engine.registry import engine_names, resolve_engine
from repro.obs import hooks, metrics


def assert_states_identical(a, b) -> None:
    assert np.array_equal(a.state.mu, b.state.mu)
    assert np.array_equal(a.state.x, b.state.x)
    assert np.array_equal(a.state.y, b.state.y)
    assert np.array_equal(a.state.nu, b.state.nu)
    assert np.array_equal(a.state.z, b.state.z)
    assert np.array_equal(a.state.user_counts.phi, b.state.user_counts.phi)
    assert np.array_equal(
        a.tweeting_model.counts_copy(), b.tweeting_model.counts_copy()
    )


class TestColoring:
    def test_proper_and_deterministic(self, rng):
        src = rng.integers(0, 200, size=600)
        dst = rng.integers(0, 200, size=600)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        part = color_users(200, src, dst)
        assert check_proper(part, src, dst)
        again = color_users(200, src, dst)
        assert np.array_equal(part.colors, again.colors)
        assert part.n_colors == again.n_colors

    def test_edgeless_graph_is_one_color(self):
        empty = np.empty(0, dtype=np.int64)
        part = color_users(50, empty, empty)
        assert part.n_colors == 1
        assert np.all(part.colors == 0)
        assert part.conflict_edges == 0

    def test_conflict_adjacency_drops_self_pairs(self):
        src = np.array([0, 1, 2])
        dst = np.array([0, 2, 1])
        indptr, indices = conflict_adjacency(4, src, dst)
        assert indptr[1] - indptr[0] == 0  # user 0's self-pair dropped
        assert set(indices.tolist()) == {1, 2}

    def test_stats_shape(self, small_world):
        params = MLPParams(n_iterations=2, burn_in=0, engine="partitioned")
        sampler = make_sampler(small_world, params)
        stats = sampler.partition.stats()
        assert stats["n_users"] == small_world.n_users
        assert stats["n_colors"] >= 2
        assert stats["largest_block"] >= stats["smallest_block"]


class TestGoldenOneColor:
    def test_no_conflict_world_delegates_bit_identically(self, small_world):
        """MLP_C (no following edges) => 1 color => the exact chain."""
        params = mlp_c_params(MLPParams(n_iterations=4, burn_in=1, seed=7))
        vec = VectorizedGibbsSampler(small_world, params)
        part = PartitionedGibbsSampler(small_world, params)
        assert part.delegates_to_exact
        vec.initialize()
        part.initialize()
        assert_states_identical(vec, part)
        for _ in range(3):
            assert vec.sweep() == part.sweep()
            assert_states_identical(vec, part)


class TestDeterminism:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_same_seed_same_chain(self, small_world, n_jobs):
        states = []
        for _ in range(2):
            params = MLPParams(
                n_iterations=4, burn_in=1, seed=13,
                engine="partitioned", n_jobs=n_jobs,
            )
            sampler = make_sampler(small_world, params)
            sampler.run()
            states.append(sampler)
        assert_states_identical(*states)

    def test_independent_of_n_jobs(self, small_world):
        samplers = []
        for n_jobs in (1, 4):
            params = MLPParams(
                n_iterations=5, burn_in=1, seed=3,
                engine="partitioned", n_jobs=n_jobs,
            )
            sampler = make_sampler(small_world, params)
            sampler.run()
            samplers.append(sampler)
        assert_states_identical(*samplers)


class TestInvariants:
    @pytest.fixture(scope="class")
    def swept(self, small_world):
        params = MLPParams(
            n_iterations=5, burn_in=1, seed=9, engine="partitioned", n_jobs=2
        )
        sampler = PartitionedGibbsSampler(small_world, params)
        sampler.initialize()
        for _ in range(4):
            sampler.sweep()
        return sampler

    def test_counts_match_assignments(self, swept):
        expected = np.zeros_like(swept.state.user_counts.phi)
        mu0 = swept.state.mu == 0
        np.add.at(
            expected, (swept._followers[mu0], swept.state.x[mu0]), 1
        )
        np.add.at(expected, (swept._friends[mu0], swept.state.y[mu0]), 1)
        nu0 = swept.state.nu == 0
        np.add.at(expected, (swept._tw_users[nu0], swept.state.z[nu0]), 1)
        assert np.array_equal(expected, swept.state.user_counts.phi)
        assert np.array_equal(
            expected.sum(axis=1), swept.state.user_counts.totals
        )

    def test_venue_counts_nonnegative(self, swept):
        assert np.all(swept.tweeting_model.counts_copy() >= 0)

    def test_position_caches_track_assignments(self, swept):
        cands = swept.priors.candidates
        for s in np.flatnonzero(swept.state.mu == 0)[:50]:
            i = swept._followers[s]
            assert cands[i][swept._x_idx[s]] == swept.state.x[s]

    def test_sweep_requires_initialize(self, small_world):
        sampler = PartitionedGibbsSampler(
            small_world, MLPParams(n_iterations=2, burn_in=0)
        )
        with pytest.raises(RuntimeError):
            sampler.sweep()


class TestSelfFollowGuard:
    def test_layout_rejects_self_follow_edges(self, gazetteer):
        observed = np.array([0, 1, -1, 5])
        world = ColumnarWorld.from_edge_arrays(
            gazetteer,
            observed_location=observed,
            edge_src=np.array([0, 0, 1]),
            edge_dst=np.array([0, 1, 2]),  # (0, 0) is a self-follow
            tweet_user=np.array([3]),
            tweet_venue=np.array([2]),
        )
        params = MLPParams(
            n_iterations=2, burn_in=0, seed=1, engine="partitioned",
            fit_alpha_beta=False,
        )
        sampler = PartitionedGibbsSampler(world, params)
        sampler.initialize()
        with pytest.raises(ValueError, match="self-follow"):
            sampler.sweep()


class TestFactoryAndParams:
    def test_registry_names(self):
        assert engine_names() == ("loop", "partitioned", "vectorized")
        assert resolve_engine("partitioned") is PartitionedGibbsSampler
        assert ENGINES["partitioned"] is PartitionedGibbsSampler

    def test_resolve_unknown_engine(self):
        with pytest.raises(ValueError):
            resolve_engine("gpu")

    def test_params_accept_n_jobs(self):
        assert MLPParams(engine="partitioned", n_jobs=8).n_jobs == 8

    def test_params_reject_bad_n_jobs(self):
        with pytest.raises(ValueError):
            MLPParams(n_jobs=0)

    def test_model_fit_smoke(self, small_world):
        params = MLPParams(
            n_iterations=4, burn_in=1, seed=5,
            engine="partitioned", n_jobs=2,
        )
        result = MLPModel(params).fit(small_world)
        assert len(result.profiles) == small_world.n_users
        assert len(result.trace) == params.n_iterations


class TestPartitionObservability:
    def test_metrics_observer_populates_registry(self, small_world):
        registry = metrics.MetricsRegistry()
        observer = hooks.metrics_partition_observer(registry)
        previous = hooks.set_partition_observer(observer)
        try:
            params = MLPParams(
                n_iterations=3, burn_in=1, seed=2,
                engine="partitioned", n_jobs=2,
            )
            sampler = make_sampler(small_world, params)
            sampler.initialize()
            sampler.sweep()
        finally:
            hooks.set_partition_observer(previous)
        gauge, color_h, worker_h = metrics.partition_metrics(registry)
        n_colors = sampler.partition.n_colors
        assert gauge.labels(phase="following").value == float(n_colors)
        assert color_h.labels(phase="following").count >= 1
        assert worker_h.labels(phase="following").count >= 1
        assert color_h.labels(phase="tweeting").count >= 1

    def test_observer_does_not_perturb_chain(self, small_world):
        params = MLPParams(
            n_iterations=3, burn_in=1, seed=11, engine="partitioned"
        )
        bare = make_sampler(small_world, params)
        bare.run()
        registry = metrics.MetricsRegistry()
        previous = hooks.set_partition_observer(
            hooks.metrics_partition_observer(registry)
        )
        try:
            observed = make_sampler(small_world, params)
            observed.run()
        finally:
            hooks.set_partition_observer(previous)
        assert_states_identical(bare, observed)


class TestStatisticalEquivalence:
    """Partitioned vs exact chains on a 5k-user world.

    The noise-fraction series are means over ~50-70k relationships, so
    their per-sweep Monte-Carlo noise is ~0.0015 absolute -- tight
    enough that *same-engine* seed pairs measure R-hat ~1.1 at this
    chain length.  The documented tolerances (docs/PERFORMANCE.md)
    are calibrated against that floor: mixed-engine 4-chain R-hat
    < 1.5 (a real distributional divergence, e.g. a wrong exclusion
    term shifting the posterior by even 1%%, pushes it past 3),
    post-burn-in posterior-mean gap < 0.01 absolute, and
    predicted-home agreement >= 0.90.
    """

    SWEEPS, BURN = 14, 6

    @pytest.fixture(scope="class")
    def world(self):
        return generate_columnar_world(
            SyntheticWorldConfig(n_users=5000, seed=17), shards=8
        )

    def _run(self, world, engine, seed):
        params = MLPParams(
            n_iterations=self.SWEEPS, burn_in=self.BURN, seed=seed,
            engine=engine, n_jobs=2, fit_alpha_beta=False, em_rounds=0,
            track_edge_assignments=False,
        )
        sampler = make_sampler(world, params)
        trace = sampler.run()
        return sampler, trace

    @pytest.fixture(scope="class")
    def chains(self, world):
        return {
            (engine, seed): self._run(world, engine, seed)
            for engine in ("vectorized", "partitioned")
            for seed in (0, 1)
        }

    def test_mixed_engine_rhat(self, chains):
        traces = [trace for _sampler, trace in chains.values()]
        for series in ("noise_following", "noise_tweeting"):
            rhat = trace_scale_reduction(
                traces, series=series, burn_in=self.BURN
            )
            assert rhat < 1.5, f"{series} R-hat {rhat:.3f}"

    def test_predicted_home_agreement(self, chains):
        vec, _ = chains[("vectorized", 0)]
        part, _ = chains[("partitioned", 0)]
        agreement = np.mean(
            vec.current_home_estimates() == part.current_home_estimates()
        )
        assert agreement >= 0.90, f"home agreement {agreement:.3f}"

    def test_posterior_mean_tolerance(self, chains):
        _, tv = chains[("vectorized", 0)]
        _, tp = chains[("partitioned", 0)]
        for series in (
            "noise_following_fractions", "noise_tweeting_fractions"
        ):
            mean_v = np.mean(getattr(tv, series)()[self.BURN:])
            mean_p = np.mean(getattr(tp, series)()[self.BURN:])
            gap = abs(mean_v - mean_p)
            assert gap < 0.01, f"{series} posterior mean gap {gap:.4f}"
