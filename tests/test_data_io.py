"""Round-trip tests for dataset persistence."""

import json

import pytest

from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.data.io import FORMAT_VERSION, load_dataset, save_dataset


@pytest.fixture(scope="module")
def world():
    return generate_world(
        SyntheticWorldConfig(n_users=40, seed=9, render_tweets=True)
    )


class TestRoundTrip:
    def test_users_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.n_users == world.n_users
        for a, b in zip(world.users, loaded.users):
            assert a == b

    def test_edges_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.following == world.following
        assert loaded.tweeting == world.tweeting

    def test_tweets_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.tweets == world.tweets

    def test_gazetteer_survives(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert len(loaded.gazetteer) == len(world.gazetteer)
        assert loaded.gazetteer.by_id(3).name == world.gazetteer.by_id(3).name
        assert loaded.gazetteer.by_id(3).lat == world.gazetteer.by_id(3).lat

    def test_labels_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.observed_locations == world.observed_locations

    def test_derived_structures_equal(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.friends_of == world.friends_of
        assert loaded.venues_of == world.venues_of


class TestVersioning:
    def test_version_written(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)

    def test_missing_version_rejected(self, world, tmp_path):
        path = tmp_path / "ds.json"
        path.write_text(json.dumps({"users": []}))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
