"""Round-trip tests for dataset persistence."""

import gzip
import json

import pytest

from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.data.io import (
    FORMAT_VERSION,
    dataset_from_payload,
    dataset_to_payload,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(
        SyntheticWorldConfig(n_users=40, seed=9, render_tweets=True)
    )


class TestRoundTrip:
    def test_users_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.n_users == world.n_users
        for a, b in zip(world.users, loaded.users):
            assert a == b

    def test_edges_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.following == world.following
        assert loaded.tweeting == world.tweeting

    def test_tweets_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.tweets == world.tweets

    def test_gazetteer_survives(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert len(loaded.gazetteer) == len(world.gazetteer)
        assert loaded.gazetteer.by_id(3).name == world.gazetteer.by_id(3).name
        assert loaded.gazetteer.by_id(3).lat == world.gazetteer.by_id(3).lat

    def test_labels_survive(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.observed_locations == world.observed_locations

    def test_derived_structures_equal(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.friends_of == world.friends_of
        assert loaded.venues_of == world.venues_of


class TestGzip:
    def test_gz_round_trip(self, world, tmp_path):
        path = tmp_path / "ds.json.gz"
        save_dataset(world, path)
        loaded = load_dataset(path)
        assert loaded.users == world.users
        assert loaded.following == world.following
        assert loaded.tweeting == world.tweeting
        assert loaded.tweets == world.tweets

    def test_gz_file_is_actually_compressed(self, world, tmp_path):
        plain = tmp_path / "ds.json"
        packed = tmp_path / "ds.json.gz"
        save_dataset(world, plain)
        save_dataset(world, packed)
        # Valid gzip magic and a real size win over plain JSON.
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert packed.stat().st_size < plain.stat().st_size

    def test_gz_payload_identical_to_plain(self, world, tmp_path):
        plain = tmp_path / "ds.json"
        packed = tmp_path / "ds.json.gz"
        save_dataset(world, plain)
        save_dataset(world, packed)
        with gzip.open(packed, "rt", encoding="utf-8") as fh:
            assert fh.read() == plain.read_text()

    def test_gz_deterministic(self, world, tmp_path):
        a = tmp_path / "a.json.gz"
        b = tmp_path / "b.json.gz"
        save_dataset(world, a)
        save_dataset(world, b)
        assert a.read_bytes() == b.read_bytes()

    def test_gz_version_check_applies(self, world, tmp_path):
        path = tmp_path / "ds.json.gz"
        save_dataset(world, path)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["version"] = 999
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)


class TestPayloadHooks:
    def test_payload_round_trip(self, world):
        rebuilt = dataset_from_payload(dataset_to_payload(world))
        assert rebuilt.users == world.users
        assert rebuilt.following == world.following
        assert rebuilt.tweeting == world.tweeting

    def test_payload_rejects_unknown_version(self, world):
        payload = dataset_to_payload(world)
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            dataset_from_payload(payload)


class TestVersioning:
    def test_version_written(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, world, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(world, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)

    def test_missing_version_rejected(self, world, tmp_path):
        path = tmp_path / "ds.json"
        path.write_text(json.dumps({"users": []}))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
