"""Unit tests for repro.geo.gazetteer."""

import pytest

from repro.geo.gazetteer import Gazetteer, Location, normalize_place_name


def make_gazetteer():
    return Gazetteer(
        [
            Location(0, "Los Angeles", "CA", 34.0522, -118.2437, 3_694_820),
            Location(1, "Austin", "TX", 30.2672, -97.7431, 656_562),
            Location(2, "Princeton", "NJ", 40.3573, -74.6672, 14_203),
            Location(3, "Princeton", "WV", 37.3662, -81.1026, 6_347),
            Location(4, "St. Louis", "MO", 38.6270, -90.1994, 348_189),
        ]
    )


class TestNormalizePlaceName:
    def test_casefold(self):
        assert normalize_place_name("Los Angeles") == "los angeles"

    def test_strips_periods(self):
        assert normalize_place_name("St. Louis") == "st louis"

    def test_hyphens_become_spaces(self):
        assert normalize_place_name("Winston-Salem") == "winston salem"

    def test_collapses_whitespace(self):
        assert normalize_place_name("  New   York ") == "new york"


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Gazetteer([])

    def test_rejects_sparse_ids(self):
        with pytest.raises(ValueError):
            Gazetteer([Location(5, "X", "XX", 0.0, 0.0, 1)])

    def test_rejects_duplicate_city_state(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gazetteer(
                [
                    Location(0, "Austin", "TX", 30.0, -97.0, 1),
                    Location(1, "Austin", "TX", 31.0, -98.0, 2),
                ]
            )

    def test_orders_by_id(self):
        gaz = make_gazetteer()
        assert [loc.location_id for loc in gaz] == [0, 1, 2, 3, 4]


class TestLookups:
    def test_by_id(self):
        gaz = make_gazetteer()
        assert gaz.by_id(1).city == "Austin"

    def test_by_id_out_of_range(self):
        gaz = make_gazetteer()
        with pytest.raises(IndexError):
            gaz.by_id(99)
        with pytest.raises(IndexError):
            gaz.by_id(-1)

    def test_lookup_name_case_insensitive(self):
        gaz = make_gazetteer()
        assert gaz.lookup_name("AUSTIN")[0].location_id == 1

    def test_lookup_name_unknown_returns_empty(self):
        gaz = make_gazetteer()
        assert gaz.lookup_name("atlantis") == ()

    def test_ambiguous_name_returns_all_sorted_by_population(self):
        gaz = make_gazetteer()
        hits = gaz.lookup_name("princeton")
        assert [h.state for h in hits] == ["NJ", "WV"]

    def test_is_ambiguous(self):
        gaz = make_gazetteer()
        assert gaz.is_ambiguous("princeton")
        assert not gaz.is_ambiguous("austin")

    def test_lookup_city_state(self):
        gaz = make_gazetteer()
        assert gaz.lookup_city_state("princeton", "wv").location_id == 3
        assert gaz.lookup_city_state("Princeton", "CA") is None

    def test_lookup_with_punctuation(self):
        gaz = make_gazetteer()
        assert gaz.lookup_city_state("St Louis", "MO").location_id == 4


class TestVenueVocabulary:
    def test_ambiguous_names_collapse_to_one_venue(self):
        gaz = make_gazetteer()
        # 5 locations, but the two Princetons share one venue name.
        assert len(gaz.venue_vocabulary) == 4
        assert "princeton" in gaz.venue_vocabulary

    def test_vocabulary_is_sorted(self):
        gaz = make_gazetteer()
        assert list(gaz.venue_vocabulary) == sorted(gaz.venue_vocabulary)

    def test_venue_index_roundtrip(self):
        gaz = make_gazetteer()
        for name, idx in gaz.venue_index.items():
            assert gaz.venue_vocabulary[idx] == name

    def test_venue_id_of_location(self):
        gaz = make_gazetteer()
        vid = gaz.venue_id_of_location(2)
        assert gaz.venue_vocabulary[vid] == "princeton"
        assert gaz.venue_id_of_location(3) == vid


class TestGeometry:
    def test_distance_matrix_shape(self):
        gaz = make_gazetteer()
        assert gaz.distance_matrix.shape == (5, 5)

    def test_distance_consistent_with_locations(self):
        gaz = make_gazetteer()
        expected = gaz.by_id(0).distance_to(gaz.by_id(1))
        assert gaz.distance(0, 1) == pytest.approx(expected)

    def test_nearest(self):
        gaz = make_gazetteer()
        # A point in Hollywood should resolve to Los Angeles.
        assert gaz.nearest(34.09, -118.33).city == "Los Angeles"

    def test_within_radius_includes_self(self):
        gaz = make_gazetteer()
        assert 0 in gaz.within_radius(0, 10.0)

    def test_within_radius_finds_nothing_far(self):
        gaz = make_gazetteer()
        # Nothing else within 100 miles of Los Angeles in this toy set.
        assert gaz.within_radius(0, 100.0) == [0]

    def test_lats_lons_indexed_by_id(self):
        gaz = make_gazetteer()
        assert gaz.lats[1] == pytest.approx(30.2672)
        assert gaz.lons[1] == pytest.approx(-97.7431)


class TestSubset:
    def test_subset_redensifies_ids(self):
        gaz = make_gazetteer()
        sub = gaz.subset([2, 4])
        assert len(sub) == 2
        assert [loc.location_id for loc in sub] == [0, 1]
        assert {loc.city for loc in sub} == {"Princeton", "St. Louis"}

    def test_subset_preserves_coordinates(self):
        gaz = make_gazetteer()
        sub = gaz.subset([1])
        assert sub.by_id(0).lat == gaz.by_id(1).lat

    def test_subset_deduplicates(self):
        gaz = make_gazetteer()
        sub = gaz.subset([1, 1, 1])
        assert len(sub) == 1
