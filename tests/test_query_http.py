"""HTTP tests for the ``GET /query/*`` routes, across both topologies.

The acceptance contract: the threaded server and the multi-process
async front end must serve every query route **byte-identically** (both
dispatch into one shared :meth:`QueryService.answer`, so this is a
structural property -- these tests keep it that way), stamp responses
with ``X-World-Generation``, and agree on 400/404/405 semantics.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.query.service import QUERY_ROUTES
from repro.serving.foldin import FoldInPredictor
from repro.serving.frontend import FrontendThread, make_frontend
from repro.serving.server import make_server
from repro.serving.store import WorldStore


@pytest.fixture(scope="module")
def dataset():
    return generate_world(SyntheticWorldConfig(n_users=90, seed=17))


@pytest.fixture(scope="module")
def result(dataset):
    params = MLPParams(n_iterations=10, burn_in=4, seed=0, engine="vectorized")
    return MLPModel(params).fit(dataset)


@pytest.fixture(scope="module")
def threaded_url(result):
    predictor = FoldInPredictor(result, artifact_id="query-http")
    server = make_server(predictor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def frontend_url(result, tmp_path_factory):
    predictor = FoldInPredictor(result, artifact_id="query-http")
    store = WorldStore(tmp_path_factory.mktemp("store"), predictor.world.gazetteer)
    frontend = make_frontend(predictor, store, 2, port=0, coalesce_ms=2.0)
    ft = FrontendThread(frontend).start()
    yield f"http://127.0.0.1:{ft.port}"
    ft.stop()
    store.close()


def _get_raw(url: str) -> tuple[int, bytes, dict]:
    """Status, exact body bytes, and headers (errors included)."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


QUERIES = [
    ("/query/radius", "radius=5000&lat=40&lon=-95&limit=5"),
    ("/query/radius", "radius=200&lat=40.7&lon=-74&min_confidence=0.2"),
    ("/query/top-cities", ""),
    ("/query/top-cities", "k=3&min_confidence=0.1"),
    ("/query/aggregate", ""),
    ("/query/aggregate", "by=city"),
    ("/query/venue-residents", "venue_id=0"),
]


class TestByteIdentityAcrossTopologies:
    @pytest.mark.parametrize(("route", "query"), QUERIES)
    def test_bodies_match_byte_for_byte(
        self, threaded_url, frontend_url, route, query
    ):
        target = route + ("?" + query if query else "")
        status_a, body_a, headers_a = _get_raw(threaded_url + target)
        status_b, body_b, headers_b = _get_raw(frontend_url + target)
        assert status_a == status_b == 200
        assert body_a == body_b
        assert (
            headers_a["X-World-Generation"]
            == headers_b["X-World-Generation"]
            == "0"
        )

    def test_error_bodies_match(self, threaded_url, frontend_url):
        for target in (
            "/query/radius?radius=10",
            "/query/top-cities?k=bogus",
            "/query/aggregate?by=planet",
            "/query/venue-residents",
        ):
            status_a, body_a, _ = _get_raw(threaded_url + target)
            status_b, body_b, _ = _get_raw(frontend_url + target)
            assert status_a == status_b == 400
            assert body_a == body_b
            assert b"error" in body_a


@pytest.mark.parametrize("base", ["threaded_url", "frontend_url"])
class TestQueryRouteSemantics:
    def test_generation_header_matches_body(self, base, request):
        url = request.getfixturevalue(base)
        status, body, headers = _get_raw(url + "/query/top-cities")
        assert status == 200
        payload = json.loads(body)
        assert headers["X-World-Generation"] == str(payload["generation"])
        assert payload["artifact_id"] == "query-http"

    def test_all_query_routes_registered(self, base, request):
        url = request.getfixturevalue(base)
        for route in QUERY_ROUTES:
            status, _, _ = _get_raw(url + route + "?min_confidence=2")
            # Reachable (bad parameter, not missing route).
            assert status == 400

    def test_unknown_query_route_404(self, base, request):
        url = request.getfixturevalue(base)
        status, _, _ = _get_raw(url + "/query/nope")
        assert status == 404

    def test_post_on_query_route_405(self, base, request):
        url = request.getfixturevalue(base)
        req = urllib.request.Request(
            url + "/query/top-cities",
            data=b"{}",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET"

    def test_query_string_ignored_for_routing(self, base, request):
        """`?k=3` must route to the handler, not 404 on the raw path."""
        url = request.getfixturevalue(base)
        status, body, _ = _get_raw(url + "/query/top-cities?k=3")
        assert status == 200
        assert json.loads(body)["k"] == 3

    def test_radius_answer_composes_spatial_grid(self, base, request):
        url = request.getfixturevalue(base)
        status, body, _ = _get_raw(
            url + "/query/radius?radius=25000&lat=40&lon=-95&limit=1000"
        )
        assert status == 200
        payload = json.loads(body)
        # A continent-sized radius sees the whole predicted population.
        assert payload["total"] == sum(
            row["predicted_residents"] for row in payload["locations"]
        )
        assert len(payload["users"]) == payload["total"]
        assert not payload["truncated"]
