"""Tests for (alpha, beta) calibration: initial fit and EM refit."""

import pytest

from repro.core.calibration import fit_initial_power_law, refit_power_law
from repro.core.gibbs import GibbsSampler
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.data.model import Dataset, User


class TestInitialFit:
    def test_learns_negative_decay(self, small_world):
        law = fit_initial_power_law(small_world, MLPParams())
        assert law.alpha < -0.05
        assert law.beta > 0

    def test_deterministic(self, small_world):
        params = MLPParams(seed=4)
        a = fit_initial_power_law(small_world, params)
        b = fit_initial_power_law(small_world, params)
        assert a.alpha == b.alpha and a.beta == b.beta

    def test_beta_scales_with_density(self):
        """A denser world (more friends per user) must fit a larger beta."""
        sparse = generate_world(
            SyntheticWorldConfig(n_users=300, seed=1, mean_friends=4.0)
        )
        dense = generate_world(
            SyntheticWorldConfig(n_users=300, seed=1, mean_friends=16.0)
        )
        params = MLPParams()
        beta_sparse = fit_initial_power_law(sparse, params).beta
        beta_dense = fit_initial_power_law(dense, params).beta
        assert beta_dense > beta_sparse

    def test_too_few_labels_falls_back(self, gazetteer):
        ds = Dataset(
            gazetteer,
            [User(i) for i in range(5)],
            [],
            [],
        )
        params = MLPParams(alpha=-0.55, beta=0.0045)
        law = fit_initial_power_law(ds, params)
        assert law.alpha == -0.55
        assert law.beta == 0.0045

    def test_max_users_subsample(self, small_world):
        # Subsampling must still produce a sane negative decay.
        law = fit_initial_power_law(small_world, MLPParams(), max_users=50)
        assert law.alpha < 0


class TestRefit:
    @pytest.fixture(scope="class")
    def burned_sampler(self, small_world):
        params = MLPParams(n_iterations=6, burn_in=3, seed=5)
        sampler = GibbsSampler(small_world, params)
        sampler.initialize()
        for _ in range(4):
            sampler.sweep()
        return sampler

    def test_refit_returns_negative_decay(self, small_world, burned_sampler):
        law = refit_power_law(small_world, burned_sampler, burned_sampler.params)
        assert law.alpha < -0.05

    def test_refit_with_too_few_location_edges_keeps_previous(
        self, small_world, burned_sampler
    ):
        previous = burned_sampler.following_model.law
        saved_mu = burned_sampler.state.mu.copy()
        burned_sampler.state.mu[:] = 1  # pretend everything is noise
        try:
            law = refit_power_law(
                small_world, burned_sampler, burned_sampler.params
            )
            assert law is previous
        finally:
            burned_sampler.state.mu[:] = saved_mu

    def test_refit_deterministic(self, small_world, burned_sampler):
        a = refit_power_law(small_world, burned_sampler, burned_sampler.params)
        b = refit_power_law(small_world, burned_sampler, burned_sampler.params)
        assert a.alpha == b.alpha and a.beta == b.beta


class TestRunInference:
    def test_law_history_grows_with_em_rounds(self, small_world):
        from repro.core.gibbs_em import run_inference

        params = MLPParams(n_iterations=6, burn_in=2, em_rounds=2, seed=1)
        run = run_inference(small_world, params)
        assert len(run.law_history) == 3  # initial + 2 refits

    def test_no_em_keeps_initial_law(self, small_world):
        from repro.core.gibbs_em import run_inference

        params = MLPParams(n_iterations=5, burn_in=2, em_rounds=0, seed=1)
        run = run_inference(small_world, params)
        assert len(run.law_history) == 1

    def test_fixed_law_when_fitting_disabled(self, small_world):
        from repro.core.gibbs_em import run_inference

        params = MLPParams(
            n_iterations=5, burn_in=2, fit_alpha_beta=False,
            alpha=-0.7, beta=0.01, seed=1,
        )
        run = run_inference(small_world, params)
        assert run.final_law.alpha == -0.7
        assert run.final_law.beta == 0.01

    def test_trace_length_equals_iterations(self, small_world):
        from repro.core.gibbs_em import run_inference

        params = MLPParams(n_iterations=7, burn_in=3, seed=1)
        run = run_inference(small_world, params)
        assert len(run.trace) == 7

    def test_theta_snapshots_cover_post_burn_in(self, small_world):
        from repro.core.gibbs_em import run_inference

        params = MLPParams(n_iterations=7, burn_in=3, seed=1)
        run = run_inference(small_world, params)
        assert run.sampler.state.theta_samples == 4
