"""docs/API.md must cover every registered HTTP route, and only those.

The route tables in :mod:`repro.serving.server` (``GET_HANDLERS`` /
``POST_HANDLERS``, shared by both serving topologies) are diffed
against the ``### GET /...`` / ``### POST /...`` headings in
docs/API.md: an undocumented route or a documented-but-unregistered
route fails here, which is what keeps the reference complete as the
API grows.
"""

import re
from pathlib import Path

from repro.serving.server import GET_ROUTES, POST_ROUTES

DOC = Path(__file__).resolve().parent.parent / "docs" / "API.md"

HEADING = re.compile(r"^### (GET|POST) (/\S+)\s*$", re.MULTILINE)


def _documented_routes() -> dict[str, set[str]]:
    routes: dict[str, set[str]] = {"GET": set(), "POST": set()}
    for method, route in HEADING.findall(DOC.read_text(encoding="utf-8")):
        routes[method].add(route)
    return routes


def test_every_get_route_documented():
    documented = _documented_routes()["GET"]
    assert documented == set(GET_ROUTES), (
        f"docs/API.md GET headings {sorted(documented)} != registered "
        f"routes {sorted(GET_ROUTES)}"
    )


def test_every_post_route_documented():
    documented = _documented_routes()["POST"]
    assert documented == set(POST_ROUTES), (
        f"docs/API.md POST headings {sorted(documented)} != registered "
        f"routes {sorted(POST_ROUTES)}"
    )


def test_no_route_documented_under_both_methods():
    documented = _documented_routes()
    assert not documented["GET"] & documented["POST"]


def test_window_contract_documented():
    """The StaleWindowError docstrings point at this section by name."""
    text = DOC.read_text(encoding="utf-8")
    assert "## Incremental re-scoring window" in text
    assert "StaleWindowError" in text
    assert 'full_fallback' in text
