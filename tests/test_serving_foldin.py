"""Fold-in predictor tests: frozen-posterior scoring of users."""

import numpy as np
import pytest

from repro.core.model import MLPModel
from repro.core.params import MLPParams
from repro.data.generator import SyntheticWorldConfig, generate_world
from repro.serving.foldin import FoldInPredictor, UserSpec


@pytest.fixture(scope="module")
def world():
    return generate_world(SyntheticWorldConfig(n_users=120, seed=5))


@pytest.fixture(scope="module")
def result(world):
    params = MLPParams(
        n_iterations=20, burn_in=8, seed=0, engine="vectorized"
    )
    return MLPModel(params).fit(world)


@pytest.fixture(scope="module")
def predictor(result):
    return FoldInPredictor(result, artifact_id="test-artifact")


class TestTrainingReproduction:
    def test_labeled_training_users_reproduce_home(self, predictor, result, world):
        """Acceptance: fold-in of a training user reproduces the fitted
        home prediction (exactly for every labeled user -- the boosted
        prior pins the posterior mode)."""
        for uid in world.labeled_user_ids:
            spec = predictor.spec_for_training_user(uid)
            assert predictor.predict(spec).home == result.predicted_home(uid)

    def test_overall_agreement_rate(self, predictor, result, world):
        """Unlabeled multimodal users may resolve to a different mode;
        the overall agreement rate stays high."""
        agree = sum(
            predictor.predict(predictor.spec_for_training_user(uid)).home
            == result.predicted_home(uid)
            for uid in range(world.n_users)
        )
        assert agree / world.n_users >= 0.9

    def test_profiles_are_normalized(self, predictor, world):
        for uid in range(0, world.n_users, 7):
            prediction = predictor.predict(
                predictor.spec_for_training_user(uid)
            )
            total = sum(p for _, p in prediction.profile.entries)
            assert abs(total - 1.0) < 1e-9


class TestUnseenUsers:
    def test_empty_spec_falls_back_to_prior(self, predictor):
        prediction = predictor.predict(UserSpec())
        assert prediction.converged
        assert prediction.iterations == 0
        assert prediction.home is not None
        # Flat prior over the full gazetteer: uniform probabilities.
        probs = {p for _, p in prediction.profile.entries}
        assert len(probs) == 1

    def test_observed_location_dominates_empty_evidence(self, predictor):
        prediction = predictor.predict(UserSpec(observed_location=3))
        assert prediction.home == 3

    def test_new_user_with_edges_gets_plausible_home(self, predictor, world):
        # Follow two labeled users; the fold-in home must be a
        # candidate observed from those relationships.
        labeled = list(world.labeled_user_ids[:2])
        spec = UserSpec(friends=tuple(labeled))
        prediction = predictor.predict(spec)
        observed = {world.observed_locations[u] for u in labeled}
        assert prediction.home in observed

    def test_venue_only_user(self, predictor, world):
        vid = world.tweeting[0].venue_id
        prediction = predictor.predict(UserSpec(venues=(vid, vid, vid)))
        referents = set()
        gaz = world.gazetteer
        name = gaz.venue_vocabulary[vid]
        referents = {loc.location_id for loc in gaz.lookup_name(name)}
        assert prediction.home in referents

    def test_deterministic(self, predictor, world):
        spec = UserSpec(friends=tuple(world.labeled_user_ids[:3]))
        a = predictor.predict(spec, use_cache=False)
        b = predictor.predict(spec, use_cache=False)
        assert a.profile == b.profile
        assert a.iterations == b.iterations

    def test_validation_rejects_unknown_ids(self, predictor):
        with pytest.raises(ValueError, match="neighbour"):
            predictor.predict(UserSpec(friends=(10_000,)))
        with pytest.raises(ValueError, match="venue"):
            predictor.predict(UserSpec(venues=(10_000_000,)))
        with pytest.raises(ValueError, match="location"):
            predictor.predict(UserSpec(observed_location=-5))


class TestCache:
    def test_second_call_served_from_cache(self, predictor, world):
        spec = UserSpec(friends=tuple(world.labeled_user_ids[3:6]))
        first = predictor.predict(spec)
        second = predictor.predict(spec)
        assert not first.from_cache
        assert second.from_cache
        assert second.profile == first.profile

    def test_signature_is_order_insensitive(self):
        a = UserSpec(friends=(1, 2, 3), venues=(5, 9))
        b = UserSpec(friends=(3, 1, 2), venues=(9, 5))
        assert a.signature() == b.signature()
        assert a.signature() != UserSpec(friends=(1, 2)).signature()

    def test_use_cache_false_bypasses(self, result, world):
        predictor = FoldInPredictor(result, artifact_id="bypass")
        spec = UserSpec(friends=tuple(world.labeled_user_ids[:2]))
        predictor.predict(spec, use_cache=False)
        assert len(predictor.cache) == 0

    def test_batch_primes_cache(self, result, world):
        predictor = FoldInPredictor(result, artifact_id="batch")
        specs = [
            predictor.spec_for_training_user(uid)
            for uid in world.labeled_user_ids[:5]
        ]
        cold = predictor.predict_batch(specs)
        warm = predictor.predict_batch(specs)
        assert not any(p.from_cache for p in cold)
        assert all(p.from_cache for p in warm)

    def test_clear_cache_resets_stats(self, result, world):
        """The artifact-reload story: /healthz hit rates must describe
        the current generation, not every artifact ever served."""
        predictor = FoldInPredictor(result, artifact_id="reload")
        spec = predictor.spec_for_training_user(1)
        predictor.predict(spec)
        predictor.predict(spec)
        assert predictor.cache.stats()["hits"] == 1
        predictor.clear_cache()
        assert len(predictor.cache) == 0
        assert predictor.cache.stats() == {
            "hits": 0, "misses": 0, "invalidations": 0, "size": 0,
            "max_size": predictor.cache.max_size,
        }

    def test_clear_cache_can_keep_stats(self, result):
        predictor = FoldInPredictor(result, artifact_id="keep")
        spec = predictor.spec_for_training_user(2)
        predictor.predict(spec)
        predictor.predict(spec)
        predictor.clear_cache(reset_stats=False)
        assert len(predictor.cache) == 0
        assert predictor.cache.stats()["hits"] == 1


class TestResolveRequest:
    def test_user_id_replays_training_user(self, predictor):
        spec = predictor.resolve_request({"user_id": 7})
        assert spec == predictor.spec_for_training_user(7)

    def test_explicit_spec(self, predictor):
        spec = predictor.resolve_request(
            {"friends": [1, 2], "venues": [0], "observed_location": 4}
        )
        assert spec.friends == (1, 2)
        assert spec.venues == (0,)
        assert spec.observed_location == 4

    def test_venue_names_resolved(self, predictor, world):
        name = world.gazetteer.venue_vocabulary[0]
        spec = predictor.resolve_request({"venue_names": [name]})
        assert spec.venues == (0,)

    def test_unknown_venue_name_rejected(self, predictor):
        with pytest.raises(ValueError, match="venue name"):
            predictor.resolve_request({"venue_names": ["atlantis"]})

    def test_user_id_with_evidence_rejected(self, predictor):
        """Extra evidence alongside user_id must error, not be dropped."""
        with pytest.raises(ValueError, match="cannot be combined"):
            predictor.resolve_request(
                {"user_id": 7, "venue_names": ["austin"]}
            )
        with pytest.raises(ValueError, match="friends"):
            predictor.resolve_request({"user_id": 7, "friends": [1]})

    def test_non_object_rejected(self, predictor):
        with pytest.raises(ValueError, match="JSON object"):
            predictor.resolve_request([1, 2])


class TestExplainEdge:
    def test_pairs_are_normalized_and_sorted(self, predictor, world):
        edge = world.following[0]
        spec = predictor.spec_for_training_user(edge.follower)
        explanation = predictor.explain_edge(
            spec, neighbor=edge.friend, direction="out", top=100_000
        )
        probs = [p.probability for p in explanation.pairs]
        assert abs(sum(probs) - 1.0) < 1e-9
        assert probs == sorted(probs, reverse=True)
        assert 0.0 <= explanation.noise_probability <= 1.0

    def test_direction_swaps_sides(self, predictor, world):
        edge = world.following[0]
        spec = predictor.spec_for_training_user(edge.follower)
        out = predictor.explain_edge(spec, neighbor=edge.friend, direction="out")
        rev = predictor.explain_edge(spec, neighbor=edge.friend, direction="in")
        assert out.pairs[0].x == rev.pairs[0].y
        assert out.pairs[0].y == rev.pairs[0].x

    def test_rejects_bad_direction(self, predictor):
        with pytest.raises(ValueError, match="direction"):
            predictor.explain_edge(UserSpec(), neighbor=0, direction="sideways")


class TestConstruction:
    def test_requires_frozen_venue_table(self, result):
        import dataclasses

        stripped = dataclasses.replace(result, venue_counts=None)
        with pytest.raises(ValueError, match="venue"):
            FoldInPredictor(stripped)

    def test_candidates_match_training_priors(self, predictor, result, world):
        """The fold-in prior of a training user equals the training prior."""
        from repro.core.priors import build_user_priors

        priors = build_user_priors(world, result.params)
        for uid in range(0, world.n_users, 11):
            cand, gamma = predictor._candidates_for(
                predictor.spec_for_training_user(uid)
            )
            assert np.array_equal(cand, priors.candidates[uid])
            assert np.array_equal(gamma, priors.gamma[uid])
