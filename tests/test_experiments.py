"""Tests for the experiment drivers, suite, and text reports."""

import numpy as np
import pytest

from repro.experiments import ExperimentSuite, report
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.figures import fig3a, fig3c
from repro.experiments.tables import METHOD_ORDER


@pytest.fixture(scope="module")
def suite():
    """One shared quick suite; results are cached per property."""
    return ExperimentSuite(quick_config(n_users=300, seed=11))


class TestConfig:
    def test_default_valid(self):
        ExperimentConfig()

    def test_quick_overrides(self):
        cfg = quick_config(n_users=123, seed=4)
        assert cfg.world.n_users == 123
        assert cfg.world.seed == 4

    def test_with_overrides(self):
        cfg = ExperimentConfig().with_overrides(n_folds=3)
        assert cfg.n_folds == 3


class TestFig3a:
    def test_power_law_shape(self, suite):
        result = suite.fig3a
        assert result.law.alpha < -0.05
        assert result.r_squared > 0.3
        assert len(result.distances) >= 5

    def test_probabilities_are_probabilities(self, suite):
        result = suite.fig3a
        assert np.all(result.probabilities > 0)
        assert np.all(result.probabilities <= 1)

    def test_requires_labeled_users(self, gazetteer):
        from repro.data.model import Dataset, User

        ds = Dataset(gazetteer, [User(i) for i in range(20)], [], [])
        with pytest.raises(ValueError):
            fig3a(ds)


class TestFig3b:
    def test_two_cities_with_venues(self, suite):
        result = suite.fig3b
        assert len(result.city_names) == 2
        assert len(result.top_venues[0]) > 0
        assert len(result.top_venues[1]) > 0

    def test_probabilities_sorted_descending(self, suite):
        for venues in suite.fig3b.top_venues:
            probs = [p for _, p in venues]
            assert probs == sorted(probs, reverse=True)

    def test_local_venue_ranks_high(self, suite):
        """Users at a city tweet that city's own name a lot (Fig 3b)."""
        result = suite.fig3b
        for city, venues in zip(result.city_names, result.top_venues):
            own = city.rsplit(",", 1)[0].strip().casefold()
            top_names = [v for v, _ in venues]
            assert own in top_names


class TestFig3c:
    def test_picks_two_location_user(self, suite):
        result = suite.fig3c
        assert len(result.true_locations) == 2

    def test_both_regions_have_signal(self, suite):
        result = suite.fig3c
        totals = [
            len(f) + len(v)
            for f, v in zip(result.friends_by_region, result.venues_by_region)
        ]
        assert all(t > 0 for t in totals)

    def test_explicit_user(self, suite):
        uid = suite.dataset.multi_location_user_ids()[0]
        result = fig3c(suite.dataset, user_id=uid)
        assert result.user_id == uid

    def test_single_location_user_rejected(self, suite):
        single = next(
            u.user_id for u in suite.dataset.users if not u.is_multi_location
        )
        with pytest.raises(ValueError):
            fig3c(suite.dataset, user_id=single)


class TestTasksThroughSuite:
    def test_table2_has_all_methods(self, suite):
        assert set(suite.table2.accuracies) == set(METHOD_ORDER)

    def test_table2_accuracies_in_range(self, suite):
        for acc in suite.table2.accuracies.values():
            assert 0.0 <= acc <= 1.0

    def test_fig4_curves_monotone(self, suite):
        for curve in suite.fig4.curves.values():
            assert list(curve) == sorted(curve)

    def test_table3_metrics_in_range(self, suite):
        for d in (suite.table3.dp, suite.table3.dr):
            for v in d.values():
                assert 0.0 <= v <= 1.0

    def test_fig6_fig7_ranks(self, suite):
        assert suite.fig6.ranks == (1, 2, 3)
        assert suite.fig7.metric == "DR"
        # DR@K never decreases with K (more predictions can only cover
        # more truths).
        for values in suite.fig7.values.values():
            assert list(values) == sorted(values)

    def test_fig8_has_mlp_and_base(self, suite):
        assert set(suite.fig8.curves) == {"MLP", "Base"}

    def test_fig5_converges(self, suite):
        result = suite.fig5
        assert len(result.accuracies) == suite.config.mlp.n_iterations
        assert len(result.accuracy_changes) == len(result.accuracies) - 1

    def test_table4_rows(self, suite):
        assert len(suite.table4.rows) == 3
        for row in suite.table4.rows:
            assert len(row.true_locations) >= 2

    def test_table5_rows(self, suite):
        assert suite.table5.rows
        assert suite.table5.user_home


class TestReports:
    def test_all_renderers_return_text(self, suite):
        renders = [
            report.render_table2(suite.table2),
            report.render_table3(suite.table3),
            report.render_table4(suite.table4),
            report.render_table5(suite.table5),
            report.render_fig3a(suite.fig3a),
            report.render_fig3b(suite.fig3b),
            report.render_fig3c(suite.fig3c),
            report.render_fig4(suite.fig4),
            report.render_fig5(suite.fig5),
            report.render_rank_sweep(suite.fig6),
            report.render_rank_sweep(suite.fig7),
            report.render_fig8(suite.fig8),
        ]
        for text in renders:
            assert isinstance(text, str) and len(text.splitlines()) >= 3

    def test_table2_mentions_every_method(self, suite):
        text = report.render_table2(suite.table2)
        for name in METHOD_ORDER:
            assert name in text

    def test_fig_headers_match_paper(self, suite):
        assert report.render_fig3a(suite.fig3a).startswith("Fig 3(a)")
        assert "Fig 6" in report.render_rank_sweep(suite.fig6)
        assert "Fig 7" in report.render_rank_sweep(suite.fig7)
