"""Golden tests: the vectorized engine replays the loop engine's chain.

The loop engine (:class:`repro.core.gibbs.GibbsSampler`) is the oracle.
Under a fixed seed the vectorized engine must produce **bit-identical**
state after every sweep -- assignments, selectors, user counts, venue
counts -- including across Gibbs-EM law swaps and for the ablation
parameterizations.  Any divergence, even in the last ulp, fails here.
"""

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.model import MLPModel, mlp_c_params, mlp_u_params
from repro.core.params import MLPParams
from repro.engine import ENGINES, VectorizedGibbsSampler, make_sampler
from repro.mathx.powerlaw import PowerLaw


def assert_states_identical(a: GibbsSampler, b: GibbsSampler) -> None:
    """Every piece of sampler state, compared exactly."""
    assert np.array_equal(a.state.mu, b.state.mu)
    assert np.array_equal(a.state.x, b.state.x)
    assert np.array_equal(a.state.y, b.state.y)
    assert np.array_equal(a.state.nu, b.state.nu)
    assert np.array_equal(a.state.z, b.state.z)
    assert np.array_equal(a.state.user_counts.phi, b.state.user_counts.phi)
    assert np.array_equal(
        a.state.user_counts.totals, b.state.user_counts.totals
    )
    assert np.array_equal(
        a.tweeting_model.counts_copy(), b.tweeting_model.counts_copy()
    )


def engine_pair(world, params):
    a = GibbsSampler(world, params)
    b = VectorizedGibbsSampler(world, params)
    a.initialize()
    b.initialize()
    return a, b


class TestGoldenBitIdentity:
    def test_initialization_identical(self, small_world):
        params = MLPParams(n_iterations=3, burn_in=1, seed=7)
        a, b = engine_pair(small_world, params)
        assert_states_identical(a, b)

    def test_every_sweep_identical(self, small_world):
        params = MLPParams(n_iterations=5, burn_in=1, seed=7)
        a, b = engine_pair(small_world, params)
        for _ in range(4):
            changed_a = a.sweep()
            changed_b = b.sweep()
            assert changed_a == changed_b
            assert_states_identical(a, b)

    def test_identical_across_law_swap(self, small_world):
        """The Gibbs-EM path: swapping (alpha, beta) mid-run."""
        params = MLPParams(n_iterations=4, burn_in=1, seed=3)
        a, b = engine_pair(small_world, params)
        a.sweep()
        b.sweep()
        law = PowerLaw(alpha=-0.9, beta=0.02)
        a.set_following_law(law)
        b.set_following_law(law)
        for _ in range(2):
            a.sweep()
            b.sweep()
        assert_states_identical(a, b)

    def test_full_inference_identical(self, small_world):
        """End to end through run_inference: EM refits, accumulation."""
        results = {}
        for engine in ENGINES:
            params = MLPParams(
                n_iterations=6, burn_in=2, seed=5, engine=engine
            )
            results[engine] = MLPModel(params).fit(small_world)
        loop, vec = results["loop"], results["vectorized"]
        for p_loop, p_vec in zip(loop.profiles, vec.profiles):
            assert p_loop.entries == p_vec.entries
        assert loop.explanations == vec.explanations
        assert loop.trace.changed_fractions() == vec.trace.changed_fractions()

    @pytest.mark.parametrize("variant", [mlp_u_params, mlp_c_params])
    def test_ablations_identical(self, small_world, variant):
        params = variant(MLPParams(n_iterations=3, burn_in=1, seed=2))
        a, b = engine_pair(small_world, params)
        for _ in range(2):
            a.sweep()
            b.sweep()
        assert_states_identical(a, b)


class TestVectorizedInvariants:
    """The loop engine's invariants hold for the vectorized engine."""

    @pytest.fixture(scope="class")
    def swept(self, small_world):
        params = MLPParams(n_iterations=4, burn_in=1, seed=9)
        sampler = VectorizedGibbsSampler(small_world, params)
        sampler.initialize()
        for _ in range(3):
            sampler.sweep()
        return sampler

    def test_counts_match_assignments(self, swept):
        expected = np.zeros_like(swept.state.user_counts.phi)
        for s in range(len(swept._followers)):
            if swept.state.mu[s] == 0:
                expected[swept._followers[s], swept.state.x[s]] += 1
                expected[swept._friends[s], swept.state.y[s]] += 1
        for k in range(len(swept._tw_users)):
            if swept.state.nu[k] == 0:
                expected[swept._tw_users[k], swept.state.z[k]] += 1
        assert np.array_equal(expected, swept.state.user_counts.phi)
        assert np.array_equal(
            expected.sum(axis=1), swept.state.user_counts.totals
        )

    def test_venue_counts_nonnegative(self, swept):
        assert np.all(swept.tweeting_model.counts_copy() >= 0)

    def test_sweep_requires_initialize(self, small_world):
        sampler = VectorizedGibbsSampler(
            small_world, MLPParams(n_iterations=2, burn_in=0)
        )
        with pytest.raises(RuntimeError):
            sampler.sweep()


class TestDeterminism:
    def test_same_seed_identical_state(self, small_world):
        """Same seed => identical GibbsState, twice over, per engine."""
        states = []
        for _ in range(2):
            params = MLPParams(
                n_iterations=4, burn_in=1, seed=13, engine="vectorized"
            )
            sampler = make_sampler(small_world, params)
            sampler.run()
            states.append(
                (sampler.state.mu.copy(), sampler.state.x.copy(),
                 sampler.state.z.copy())
            )
        for a, b in zip(states[0], states[1]):
            assert np.array_equal(a, b)

    def test_different_seed_differs(self, small_world):
        chains = []
        for seed in (1, 2):
            params = MLPParams(
                n_iterations=3, burn_in=1, seed=seed, engine="vectorized"
            )
            sampler = make_sampler(small_world, params)
            sampler.run()
            chains.append(sampler.state.x.copy())
        assert not np.array_equal(chains[0], chains[1])


class TestFactory:
    def test_engine_registry(self):
        assert set(ENGINES) == {"loop", "vectorized", "partitioned"}
        assert ENGINES["loop"] is GibbsSampler
        assert ENGINES["vectorized"] is VectorizedGibbsSampler

    def test_make_sampler_dispatches(self, tiny_world):
        for engine, cls in ENGINES.items():
            params = MLPParams(n_iterations=2, burn_in=0, engine=engine)
            assert type(make_sampler(tiny_world, params)) is cls

    def test_params_reject_unknown_engine(self):
        with pytest.raises(ValueError):
            MLPParams(engine="gpu")

    def test_params_reject_bad_chains(self):
        with pytest.raises(ValueError):
            MLPParams(n_chains=0)
