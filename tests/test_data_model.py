"""Unit tests for the dataset containers."""

import pytest

from repro.data.model import Dataset, FollowingEdge, TweetingEdge, User
from repro.geo.gazetteer import Gazetteer, Location


@pytest.fixture(scope="module")
def toy_gaz():
    return Gazetteer(
        [
            Location(0, "A-Town", "CA", 34.0, -118.0, 100),
            Location(1, "B-Town", "TX", 30.0, -97.0, 200),
            Location(2, "C-Town", "NY", 40.0, -74.0, 300),
        ]
    )


@pytest.fixture()
def toy_dataset(toy_gaz):
    users = [
        User(0, registered_location=0, true_home=0, true_locations=(0,),
             true_profile_weights=(1.0,)),
        User(1, registered_location=None, true_home=1,
             true_locations=(1, 2), true_profile_weights=(0.7, 0.3)),
        User(2, registered_location=2, true_home=2, true_locations=(2,),
             true_profile_weights=(1.0,)),
    ]
    following = [
        FollowingEdge(0, 1, true_x=0, true_y=1, is_noise=False),
        FollowingEdge(1, 2, true_x=2, true_y=2, is_noise=False),
        FollowingEdge(2, 0, true_x=None, true_y=None, is_noise=True),
    ]
    tweeting = [
        TweetingEdge(0, 0, true_z=0, is_noise=False),
        TweetingEdge(1, 1, true_z=1, is_noise=False),
        TweetingEdge(1, 2, true_z=None, is_noise=True),
    ]
    return Dataset(toy_gaz, users, following, tweeting)


class TestValidation:
    def test_rejects_sparse_user_ids(self, toy_gaz):
        with pytest.raises(ValueError):
            Dataset(toy_gaz, [User(3)], [], [])

    def test_rejects_edge_to_unknown_user(self, toy_gaz):
        with pytest.raises(ValueError):
            Dataset(toy_gaz, [User(0)], [FollowingEdge(0, 9)], [])

    def test_rejects_self_follow(self):
        with pytest.raises(ValueError):
            FollowingEdge(1, 1)

    def test_rejects_unknown_venue(self, toy_gaz):
        with pytest.raises(ValueError):
            Dataset(toy_gaz, [User(0)], [], [TweetingEdge(0, 999)])

    def test_rejects_unknown_location_label(self, toy_gaz):
        with pytest.raises(ValueError):
            Dataset(toy_gaz, [User(0, registered_location=55)], [], [])


class TestUserProperties:
    def test_is_labeled(self, toy_dataset):
        assert toy_dataset.users[0].is_labeled
        assert not toy_dataset.users[1].is_labeled

    def test_is_multi_location(self, toy_dataset):
        assert toy_dataset.users[1].is_multi_location
        assert not toy_dataset.users[0].is_multi_location

    def test_has_ground_truth(self, toy_dataset):
        assert toy_dataset.has_ground_truth


class TestLabelStructure:
    def test_labeled_and_unlabeled_partition(self, toy_dataset):
        assert toy_dataset.labeled_user_ids == (0, 2)
        assert toy_dataset.unlabeled_user_ids == (1,)

    def test_observed_locations(self, toy_dataset):
        assert toy_dataset.observed_locations == {0: 0, 2: 2}


class TestAdjacency:
    def test_friends_of(self, toy_dataset):
        assert toy_dataset.friends_of[0] == (1,)
        assert toy_dataset.friends_of[1] == (2,)

    def test_followers_of(self, toy_dataset):
        assert toy_dataset.followers_of[0] == (2,)
        assert toy_dataset.followers_of[2] == (1,)

    def test_neighbors_undirected(self, toy_dataset):
        assert toy_dataset.neighbors_of[0] == (1, 2)

    def test_venues_of_with_repeats(self, toy_gaz):
        users = [User(0)]
        tweeting = [TweetingEdge(0, 1), TweetingEdge(0, 1)]
        ds = Dataset(toy_gaz, users, [], tweeting)
        assert ds.venues_of[0] == (1, 1)

    def test_venue_mention_counts(self, toy_dataset):
        counts = toy_dataset.venue_mention_counts
        assert counts.sum() == 3
        assert counts[2] == 1


class TestGroundTruthAccess:
    def test_true_home_of(self, toy_dataset):
        assert toy_dataset.true_home_of(1) == 1

    def test_true_home_missing_raises(self, toy_gaz):
        ds = Dataset(toy_gaz, [User(0)], [], [])
        with pytest.raises(ValueError):
            ds.true_home_of(0)

    def test_multi_location_cohort(self, toy_dataset):
        assert toy_dataset.multi_location_user_ids() == (1,)


class TestLabelManipulation:
    def test_hide_labels(self, toy_dataset):
        hidden = toy_dataset.with_labels_hidden([0])
        assert hidden.labeled_user_ids == (2,)
        # Ground truth survives.
        assert hidden.users[0].true_home == 0
        # Original untouched.
        assert toy_dataset.labeled_user_ids == (0, 2)

    def test_restore_labels_from_truth(self, toy_dataset):
        restored = toy_dataset.with_labels_from_truth([1])
        assert restored.users[1].registered_location == 1

    def test_hide_then_restore_roundtrip(self, toy_dataset):
        roundtrip = toy_dataset.with_labels_hidden([0]).with_labels_from_truth([0])
        assert roundtrip.observed_locations == toy_dataset.observed_locations


class TestSubset:
    def test_subset_users_remaps(self, toy_dataset):
        sub = toy_dataset.subset_users([1, 2])
        assert sub.n_users == 2
        # Edge 1->2 becomes 0->1 in the new ids.
        assert sub.following[0].follower == 0
        assert sub.following[0].friend == 1

    def test_subset_drops_crossing_edges(self, toy_dataset):
        sub = toy_dataset.subset_users([0, 1])
        # Edges touching user 2 are gone: only 0->1 remains.
        assert sub.n_following == 1

    def test_subset_keeps_tweets_of_kept_users(self, toy_dataset):
        sub = toy_dataset.subset_users([1])
        assert sub.n_tweeting == 2


class TestRepr:
    def test_repr_mentions_sizes(self, toy_dataset):
        text = repr(toy_dataset)
        assert "users=3" in text
        assert "following=3" in text
